"""Sweep executors: submit/poll/cancel over ``(benchmark, part, options)`` tasks.

The process-pool engine of :mod:`repro.perf.parallel` has one blind
spot: a worker that *dies* (SIGKILL, OOM killer, a lost host in a
distributed deployment) or *wedges* (a runaway simulation, a network
partition swallowing the result) stalls the whole sweep forever —
``concurrent.futures`` only surfaces a broken pool, and only sometimes.
This module makes worker failure a first-class, recoverable event by
splitting the sweep drivers from the fan-out machinery behind a small
interface:

* :class:`SweepExecutor` — the contract: :meth:`~SweepExecutor.submit`
  tasks, :meth:`~SweepExecutor.poll` completed results,
  :meth:`~SweepExecutor.cancel` on interrupt.  Sweep drivers see task
  results in completion order and stay bit-identical to serial because
  every task is a pure function of its ``(benchmark, part, options)``
  payload — *which* worker computes it, or how many times, cannot
  change the value.
* :class:`PoolSweepExecutor` — the existing
  :class:`~concurrent.futures.ProcessPoolExecutor` path, unchanged
  semantics (a dead worker still breaks the pool; this is the fast,
  trusting default).
* :class:`SupervisedPoolExecutor` — one supervised process per slot,
  each fed through its own inbox queue so the supervisor always knows
  which task is on which worker.  Per-task deadlines (sized from the
  trace length by :func:`default_task_timeout`) are tracked with the
  PR 4 heartbeat machinery (:class:`repro.obs.heartbeat.TaskLiveness`);
  a dead pid or an expired deadline costs exactly one task, which is
  re-dispatched under a bounded budget using the deterministic seeded
  backoff of :mod:`repro.robustness.retry`.  When workers keep dying —
  a task exhausts its re-dispatch budget or the pool exceeds its
  global death budget — a circuit breaker trips: the pool is torn
  down, an :class:`ExecutorDegradation` event is recorded (the
  ``BenchmarkFailure`` of the executor layer — an event, not a crash),
  and the remaining tasks finish serially in-process, so the sweep
  *always* completes with the same rows.

Failure model (what the supervisor treats as a lost task):

========================  =============================================
observation               meaning
========================  =============================================
worker pid not alive      the process died (chaos ``worker_kill``,
                          OOM, a lost host) — re-dispatch now
deadline expired          the worker is wedged (``worker_stall``) or
                          its result was dropped in flight
                          (``worker_partition``) — SIGKILL the worker,
                          re-dispatch
========================  =============================================

Known limitation: a worker killed *mid-put* on the shared result queue
can poison the queue for its siblings.  The deadline machinery still
recovers (their tasks expire and re-dispatch), and the circuit breaker
bounds the damage; chaos injections fire at task pickup, where the
queue is quiescent.
"""

from __future__ import annotations

import collections
import itertools
import logging
import multiprocessing
import os
import queue
import signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass
from typing import Any, Callable, Optional

from repro.errors import ConfigError
from repro.obs.heartbeat import TaskLiveness
from repro.obs.metrics import MetricsRegistry, executor_metrics
from repro.obs.spans import WallSpans
from repro.perf.cache import ArtifactCache
from repro.robustness.retry import RetryPolicy

log = logging.getLogger("repro.executor")

#: Executor implementations selectable via ``EvaluationOptions.executor``.
EXECUTOR_KINDS = ("pool", "supervised", "distributed")

#: Floor for derived per-task deadlines (seconds).
MIN_TASK_TIMEOUT = 30.0

#: Baseline deadline budget per dynamic instruction (seconds), sized for
#: the reference engine without self-checking.
BASE_SECONDS_PER_INSTRUCTION = 0.0025

#: Per-cycle invariant checking multiplies simulation cost severalfold;
#: the deadline must scale with it or ``--self-check`` sweeps on long
#: traces expire healthy workers.
SELF_CHECK_TIMEOUT_FACTOR = 4.0

#: The batched engine is measured 2.7-3.2x faster than reference; halve
#: the per-instruction budget (still comfortably above worst observed).
BATCHED_ENGINE_TIMEOUT_FACTOR = 0.5

#: The forked worker's process-local artifact cache.
_WORKER_CACHE: Optional[ArtifactCache] = None


def default_task_timeout(
    trace_length: int,
    *,
    self_check: bool = False,
    engine: Optional[str] = None,
) -> float:
    """A per-task deadline sized from the trace length and options.

    One task is one compile + trace + simulate of ``trace_length``
    dynamic instructions; the budget is a generous multiple of the
    worst observed per-instruction cost so only a genuinely wedged or
    partitioned worker ever hits it.  The per-instruction rate scales
    with what actually drives simulation cost: ``self_check`` (per-cycle
    invariant checking) multiplies the budget by
    :data:`SELF_CHECK_TIMEOUT_FACTOR`; the batched engine shrinks it by
    :data:`BATCHED_ENGINE_TIMEOUT_FACTOR` (``engine=None`` is treated as
    the reference engine).
    """
    per_instruction = BASE_SECONDS_PER_INSTRUCTION
    if engine == "batched":
        per_instruction *= BATCHED_ENGINE_TIMEOUT_FACTOR
    if self_check:
        per_instruction *= SELF_CHECK_TIMEOUT_FACTOR
    return max(MIN_TASK_TIMEOUT, 10.0 + trace_length * per_instruction)


def _init_worker(cache_dir) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = ArtifactCache(cache_dir)
    # The parent coordinates interruption (cancel pending, drain running,
    # journal, raise SweepInterrupted); a group-delivered Ctrl-C must not
    # let workers die mid-task underneath it.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass


def _worker_cache() -> ArtifactCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = ArtifactCache()
    return _WORKER_CACHE


def _ensure_worker_cache(cache_dir) -> None:
    """Give the *parent* process a task cache for degraded serial runs."""
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = ArtifactCache(cache_dir)


def _mp_context():
    """Fork where possible: monkeypatched registries and installed fault
    injection are inherited, so workers behave exactly like the parent."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()  # pragma: no cover - non-POSIX


def _pool(jobs: int, cache_dir=None) -> ProcessPoolExecutor:
    """A process pool that forks where possible (state inheritance)."""
    return ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=_mp_context(),
        initializer=_init_worker,
        initargs=(cache_dir,),
    )


# ------------------------------------------------------------------- tasks
@dataclass(frozen=True)
class SweepTask:
    """One sweep work unit: a ``(benchmark, part, options)`` triple.

    ``token`` is the stable identity used for re-dispatch bookkeeping
    and the deterministic backoff schedule; ``payload()`` is exactly the
    item the worker-side task function consumes.
    """

    benchmark: str
    part: str
    options: Any = None

    @property
    def token(self) -> str:
        return f"{self.benchmark}:{self.part}"

    def payload(self) -> tuple:
        return (self.benchmark, self.part, self.options)


@dataclass
class TaskResult:
    """A completed task plus how it got home.

    ``dispatches`` counts how many workers the task was handed to
    (1 = the happy path; more = lost workers were survived).
    """

    task: SweepTask
    value: Any
    dispatches: int = 1


@dataclass
class ExecutorDegradation:
    """``BenchmarkFailure``-style record of a tripped circuit breaker.

    Emitted (never raised) when the supervised pool gives up on worker
    processes and finishes the sweep serially in-process: the sweep
    still completes with bit-identical rows, and this event — journaled
    as a durable ``status: "event"`` record when a journal is attached —
    is the audit trail that the parallel path was abandoned and why.
    """

    reason: str
    detail: str
    worker_deaths: int = 0
    redispatches: int = 0
    remaining_tasks: int = 0

    def as_dict(self) -> dict:
        return asdict(self)

    def format(self) -> str:
        return (
            f"executor degraded ({self.reason}): {self.detail} "
            f"[deaths={self.worker_deaths} redispatches={self.redispatches} "
            f"serial_tasks={self.remaining_tasks}]"
        )


# --------------------------------------------------------------- interface
class SweepExecutor:
    """The sweep drivers' view of a fan-out engine.

    Lifecycle: ``submit()`` any number of tasks, then ``poll()`` until
    :attr:`outstanding` reaches zero; ``cancel()`` on interrupt tears
    everything down and reports how many tasks never completed.  Usable
    as a context manager (``close()`` on exit).  Implementations must
    deliver each submitted task exactly once, in completion order.
    """

    #: Set when the executor abandoned its workers mid-sweep (see
    #: :class:`ExecutorDegradation`); ``None`` on the happy path.
    degradation: Optional[ExecutorDegradation] = None

    @property
    def degradations(self) -> list[ExecutorDegradation]:
        """Every degradation event this executor recorded, in order.

        Single-host executors degrade at most once; the distributed
        coordinator's cascade can step down more than once (remote ->
        supervised -> serial), so sweep drivers journal this list rather
        than the single :attr:`degradation`.
        """
        return [self.degradation] if self.degradation is not None else []

    def submit(self, task: SweepTask) -> None:
        raise NotImplementedError

    def poll(self, timeout: Optional[float] = None) -> list[TaskResult]:
        """Completed tasks since the last call (blocks for at least one
        unless ``timeout`` expires or nothing is outstanding)."""
        raise NotImplementedError

    @property
    def outstanding(self) -> int:
        """Submitted tasks that have not yet been returned by poll()."""
        raise NotImplementedError

    def cancel(self) -> int:
        """Tear down workers and drop pending work; returns the number
        of tasks that will never complete."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PoolSweepExecutor(SweepExecutor):
    """The PR 2 process pool behind the executor interface.

    No supervision: a worker that dies raises
    :class:`~concurrent.futures.process.BrokenProcessPool` out of
    :meth:`poll` (the caller's interrupt path handles it), and a wedged
    worker blocks forever.  This is the fast, trusting default for
    healthy single-host runs.
    """

    def __init__(
        self,
        task_fn: Callable[[tuple], Any],
        jobs: int,
        cache_dir=None,
        *,
        spans=None,
    ) -> None:
        self._task_fn = task_fn
        self._pool = _pool(jobs, cache_dir)
        self._futures: dict[Any, SweepTask] = {}
        self._wall = WallSpans(spans)

    def submit(self, task: SweepTask) -> None:
        future = self._pool.submit(self._task_fn, task.payload())
        self._futures[future] = task
        self._wall.begin(future, "dispatch", task.token)

    @property
    def outstanding(self) -> int:
        return len(self._futures)

    def poll(self, timeout: Optional[float] = None) -> list[TaskResult]:
        if not self._futures:
            return []
        done, _ = wait(
            set(self._futures), timeout=timeout, return_when=FIRST_COMPLETED
        )
        results = []
        for future in done:
            task = self._futures.pop(future)
            results.append(TaskResult(task=task, value=future.result()))
            self._wall.end(future, ok=True)
        return results

    def cancel(self) -> int:
        cancelled = sum(1 for future in self._futures if future.cancel())
        self._pool.shutdown(wait=True, cancel_futures=True)
        self._futures.clear()
        self._wall.close(ok=False, reason="cancelled")
        return cancelled

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)
        self._futures.clear()
        self._wall.close(ok=False, reason="closed")


# ------------------------------------------------------- supervised worker
def _supervised_worker(
    worker_id: int, inbox, results, task_fn, cache_dir, fault_plan
) -> None:
    """One supervised worker: drain the inbox until the ``None`` pill.

    The chaos hooks live here, at task pickup, where a real worker loss
    would be observed: ``worker_kill`` SIGKILLs the process (a lost
    host), ``worker_stall`` wedges it (a runaway or hung run; the
    supervisor's deadline puts it down), ``worker_partition`` computes
    the result and drops it (the host finished but the result never
    made it home).
    """
    _init_worker(cache_dir)
    while True:
        item = inbox.get()
        if item is None:
            return
        ticket, benchmark, part, payload, dispatch = item
        kind = None
        if fault_plan is not None:
            kind = fault_plan.worker_fault(benchmark, part, dispatch)
        if kind == "worker_kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if kind == "worker_stall":
            while True:  # wedged until the supervisor SIGKILLs us
                time.sleep(60.0)
        value = task_fn(payload)
        if kind == "worker_partition":
            continue  # computed, then dropped on the floor
        results.put((ticket, worker_id, value))


class SupervisedPoolExecutor(SweepExecutor):
    """Process pool with supervision: deadlines, re-dispatch, breaker.

    One process per slot, each with a private inbox queue, so the
    supervisor knows exactly which task every worker holds.  See the
    module docstring for the failure model; the key invariant is that a
    task's value is independent of which worker computes it (tasks are
    pure functions of their payload), so loss-and-re-dispatch — and
    even the degraded serial path — keep sweeps bit-identical to
    serial.
    """

    def __init__(
        self,
        task_fn: Callable[[tuple], Any],
        jobs: int,
        cache_dir=None,
        *,
        task_timeout: float = MIN_TASK_TIMEOUT,
        redispatch_budget: int = 2,
        redispatch_policy: Optional[RetryPolicy] = None,
        max_worker_deaths: Optional[int] = None,
        worker_fault_plan=None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        poll_tick: float = 0.05,
        spans=None,
    ) -> None:
        if task_timeout <= 0:
            raise ConfigError(
                "supervised executor needs task_timeout > 0 seconds",
                task_timeout=task_timeout,
            )
        if redispatch_budget < 0:
            raise ConfigError(
                "redispatch budget must be >= 0",
                redispatch_budget=redispatch_budget,
            )
        self._task_fn = task_fn
        self._jobs = max(1, jobs)
        self._cache_dir = cache_dir
        self.task_timeout = task_timeout
        self.redispatch_budget = redispatch_budget
        self._policy = redispatch_policy or RetryPolicy(
            max_attempts=redispatch_budget + 1,
            base_delay=0.05,
            max_delay=1.0,
            seed=0,
        )
        self.max_worker_deaths = (
            max_worker_deaths
            if max_worker_deaths is not None
            else 2 * self._jobs + 2
        )
        self._fault_plan = worker_fault_plan
        self.metrics = metrics if metrics is not None else executor_metrics()
        self._clock = clock
        self._tick = poll_tick

        self._ctx = _mp_context()
        self._results = self._ctx.Queue()
        self._workers: dict[int, Any] = {}
        self._inboxes: dict[int, Any] = {}
        self._idle: list[int] = []
        self._busy: dict[int, int] = {}  # worker_id -> ticket
        self._pending: collections.deque = collections.deque()  # (token, not_before)
        self._open: dict[str, SweepTask] = {}  # token -> task (not completed)
        self._dispatches: dict[str, int] = {}  # token -> dispatch count
        self._tickets: dict[int, str] = {}  # ticket -> token
        self._ticket_seq = itertools.count(1)
        self._worker_seq = itertools.count(1)
        self._liveness = TaskLiveness(clock=clock)  # keyed by ticket
        self._wall = WallSpans(spans, clock=clock)
        self.worker_deaths = 0
        self.redispatches = 0
        self._closed = False
        for _ in range(self._jobs):
            self._spawn_worker()

    # ------------------------------------------------------------ workers
    def _spawn_worker(self) -> None:
        worker_id = next(self._worker_seq)
        inbox = self._ctx.Queue()
        process = self._ctx.Process(
            target=_supervised_worker,
            args=(
                worker_id,
                inbox,
                self._results,
                self._task_fn,
                self._cache_dir,
                self._fault_plan,
            ),
            daemon=True,
        )
        process.start()
        self._workers[worker_id] = process
        self._inboxes[worker_id] = inbox
        self._idle.append(worker_id)

    def _remove_worker(self, worker_id: int, reason: str, kill: bool = False) -> None:
        """A worker died (or must die): account, requeue its task, refill."""
        process = self._workers.pop(worker_id)
        inbox = self._inboxes.pop(worker_id)
        if kill and process.is_alive():
            process.kill()
        process.join(timeout=5.0)
        inbox.close()
        inbox.cancel_join_thread()
        if worker_id in self._idle:
            self._idle.remove(worker_id)
        self.worker_deaths += 1
        self.metrics.counter("executor_worker_deaths").inc()
        log.warning("supervised pool lost worker %d: %s", worker_id, reason)
        ticket = self._busy.pop(worker_id, None)
        if ticket is not None:
            self._liveness.finish(ticket)
            self._wall.end(ticket, ok=False, reason=reason)
            token = self._tickets.get(ticket)
            if token is not None and token in self._open:
                self._requeue(token, reason)
        if self.degradation is None and self.worker_deaths > self.max_worker_deaths:
            self._degrade(
                f"{self.worker_deaths} worker deaths exceed the pool's "
                f"budget of {self.max_worker_deaths}"
            )
            return
        if self.degradation is None and not self._closed:
            self._spawn_worker()

    def _shutdown_workers(self, kill: bool) -> None:
        for worker_id, process in list(self._workers.items()):
            if kill:
                if process.is_alive():
                    process.kill()
            else:
                try:
                    self._inboxes[worker_id].put(None)
                except (ValueError, OSError):  # pragma: no cover - closed queue
                    pass
        for worker_id, process in list(self._workers.items()):
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stubborn worker
                process.kill()
                process.join(timeout=5.0)
            inbox = self._inboxes[worker_id]
            inbox.close()
            inbox.cancel_join_thread()
        self._workers.clear()
        self._inboxes.clear()
        self._idle.clear()
        self._busy.clear()

    # ---------------------------------------------------------- lifecycle
    def submit(self, task: SweepTask) -> None:
        token = task.token
        if token in self._open:
            raise ConfigError(
                f"task {token!r} is already submitted; sweep tasks must be "
                "unique per (benchmark, part)",
                token=token,
            )
        self._open[token] = task
        self._dispatches.setdefault(token, 0)
        self._pending.append((token, 0.0))
        if self.degradation is None:
            self._dispatch_ready()

    @property
    def outstanding(self) -> int:
        return len(self._open)

    def poll(self, timeout: Optional[float] = None) -> list[TaskResult]:
        results: list[TaskResult] = []
        started = self._clock()
        while not results and self.outstanding:
            if self.degradation is not None:
                results.extend(self._serial_step())
                continue
            self._reap_dead_workers()
            if self.degradation is not None:
                continue
            self._expire_overdue()
            if self.degradation is not None:
                continue
            self._dispatch_ready()
            try:
                item = self._results.get(timeout=self._tick)
            except queue.Empty:
                item = None
            if item is not None:
                accepted = self._accept(item)
                if accepted is not None:
                    results.append(accepted)
            if timeout is not None and self._clock() - started >= timeout:
                break
        return results

    def cancel(self) -> int:
        cancelled = len(self._open)
        self._open.clear()
        self._pending.clear()
        self._shutdown_workers(kill=True)
        self._wall.close(ok=False, reason="cancelled")
        return cancelled

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._shutdown_workers(kill=False)
        self._wall.close(ok=False, reason="closed")
        self._results.close()
        self._results.cancel_join_thread()

    # --------------------------------------------------------- internals
    def _dispatch_ready(self) -> None:
        now = self._clock()
        waiting = []
        while self._pending and self._idle:
            token, not_before = self._pending.popleft()
            if token not in self._open:
                continue  # completed by a late result while queued
            if not_before > now:
                waiting.append((token, not_before))
                continue
            worker_id = self._idle.pop()
            ticket = next(self._ticket_seq)
            task = self._open[token]
            dispatch = self._dispatches[token]  # 0-based attempt index
            self._tickets[ticket] = token
            self._busy[worker_id] = ticket
            self._dispatches[token] = dispatch + 1
            self._inboxes[worker_id].put(
                (ticket, task.benchmark, task.part, task.payload(), dispatch)
            )
            self._liveness.start(ticket, self.task_timeout)
            self._wall.begin(
                ticket, "dispatch", token, worker=worker_id, dispatch=dispatch
            )
            self.metrics.counter("executor_dispatches").inc()
        self._pending.extend(waiting)

    def _accept(self, item) -> Optional[TaskResult]:
        ticket, worker_id, value = item
        self._liveness.finish(ticket)
        self._wall.end(ticket, ok=True)
        if self._busy.get(worker_id) == ticket:
            del self._busy[worker_id]
            if worker_id in self._workers:
                self._idle.append(worker_id)
        token = self._tickets.get(ticket)
        if token is None or token not in self._open:
            return None  # duplicate: the task already completed elsewhere
        task = self._open.pop(token)
        self.metrics.counter("executor_tasks_completed").inc()
        return TaskResult(
            task=task, value=value, dispatches=self._dispatches.get(token, 1)
        )

    def _reap_dead_workers(self) -> None:
        for worker_id, process in list(self._workers.items()):
            if process.is_alive():
                continue
            self._remove_worker(
                worker_id, reason=f"process exited (code {process.exitcode})"
            )
            if self.degradation is not None:
                return

    def _expire_overdue(self) -> None:
        for ticket in self._liveness.overdue():
            self.metrics.counter("executor_deadline_expirations").inc()
            worker_id = next(
                (w for w, t in self._busy.items() if t == ticket), None
            )
            if worker_id is not None:
                self._remove_worker(
                    worker_id,
                    reason=(
                        f"task deadline ({self.task_timeout:.1f}s) expired "
                        "(wedged worker or dropped result)"
                    ),
                    kill=True,
                )
            else:  # pragma: no cover - ticket raced its worker's removal
                self._liveness.finish(ticket)
            if self.degradation is not None:
                return

    def _requeue(self, token: str, reason: str) -> None:
        used = self._dispatches.get(token, 0)
        if used > self.redispatch_budget:
            self._degrade(
                f"task {token} lost {used} dispatch(es) ({reason}); "
                f"re-dispatch budget {self.redispatch_budget} exhausted"
            )
            return
        self.redispatches += 1
        self.metrics.counter("executor_redispatches").inc()
        self._wall.instant("requeue", token, reason=reason)
        delay = 0.0
        schedule = self._policy.schedule(token)
        if schedule:
            delay = schedule[min(max(used - 1, 0), len(schedule) - 1)]
        self._pending.append((token, self._clock() + delay))

    def _degrade(self, detail: str) -> None:
        remaining = len(self._open)
        self._shutdown_workers(kill=True)
        self.degradation = ExecutorDegradation(
            reason="circuit-breaker",
            detail=detail,
            worker_deaths=self.worker_deaths,
            redispatches=self.redispatches,
            remaining_tasks=remaining,
        )
        self.metrics.counter("executor_degradations").inc()
        self._wall.instant(
            "degradation", "supervised", detail=detail, remaining=remaining
        )
        log.warning(
            "supervised pool degrading to serial execution: %s", detail
        )
        # Every open task — queued or formerly in flight — now runs
        # serially in-process; fault injection lives in the workers, so
        # the degraded path always completes.
        self._pending = collections.deque(
            (token, 0.0) for token in self._open
        )
        _ensure_worker_cache(self._cache_dir)

    def _serial_step(self) -> list[TaskResult]:
        while self._pending:
            token, _ = self._pending.popleft()
            task = self._open.pop(token, None)
            if task is None:
                continue
            self._dispatches[token] = self._dispatches.get(token, 0) + 1
            value = self._task_fn(task.payload())
            self.metrics.counter("executor_tasks_completed").inc()
            return [
                TaskResult(
                    task=task, value=value, dispatches=self._dispatches[token]
                )
            ]
        if self._open:  # pragma: no cover - defensive: open without pending
            token, task = next(iter(self._open.items()))
            del self._open[token]
            self._dispatches[token] = self._dispatches.get(token, 0) + 1
            return [
                TaskResult(
                    task=task,
                    value=self._task_fn(task.payload()),
                    dispatches=self._dispatches[token],
                )
            ]
        return []


def make_sweep_executor(
    kind: str,
    task_fn: Callable[[tuple], Any],
    jobs: int,
    cache_dir=None,
    *,
    trace_length: int = 0,
    task_timeout: Optional[float] = None,
    redispatch_budget: int = 2,
    worker_fault_plan=None,
    seed: int = 0,
    self_check: bool = False,
    engine: Optional[str] = None,
    dist_bind: str = "127.0.0.1",
    dist_port: int = 0,
    dist_min_hosts: int = 1,
    dist_wait_s: float = 10.0,
    spans=None,
) -> SweepExecutor:
    """Build the executor requested by ``EvaluationOptions.executor``.

    ``task_timeout=None`` derives a deadline from ``trace_length`` (and
    the cost-scaling ``self_check``/``engine`` knobs) via
    :func:`default_task_timeout`; the re-dispatch backoff reuses the
    deterministic seeded :class:`~repro.robustness.retry.RetryPolicy`.
    ``kind="distributed"`` builds the multi-host coordinator of
    :mod:`repro.dist.coordinator` listening on
    ``dist_bind:dist_port``; the ``dist_*`` knobs are ignored by the
    single-host executors.
    """
    timeout = (
        task_timeout
        if task_timeout is not None
        else default_task_timeout(
            trace_length, self_check=self_check, engine=engine
        )
    )
    policy = RetryPolicy(
        max_attempts=max(1, redispatch_budget + 1),
        base_delay=0.05,
        max_delay=1.0,
        seed=seed,
    )
    if kind == "pool":
        return PoolSweepExecutor(task_fn, jobs, cache_dir, spans=spans)
    if kind == "supervised":
        return SupervisedPoolExecutor(
            task_fn,
            jobs,
            cache_dir,
            task_timeout=timeout,
            redispatch_budget=redispatch_budget,
            redispatch_policy=policy,
            worker_fault_plan=worker_fault_plan,
            spans=spans,
        )
    if kind == "distributed":
        from repro.dist.coordinator import DistributedExecutor

        return DistributedExecutor(
            task_fn,
            jobs,
            cache_dir,
            bind=dist_bind,
            port=dist_port,
            task_timeout=timeout,
            redispatch_budget=redispatch_budget,
            redispatch_policy=policy,
            min_hosts=dist_min_hosts,
            wait_for_hosts_s=dist_wait_s,
            spans=spans,
        )
    raise ConfigError(
        f"unknown sweep executor {kind!r}; valid: {EXECUTOR_KINDS}",
        executor=kind,
    )


__all__ = [
    "BASE_SECONDS_PER_INSTRUCTION",
    "BATCHED_ENGINE_TIMEOUT_FACTOR",
    "EXECUTOR_KINDS",
    "MIN_TASK_TIMEOUT",
    "SELF_CHECK_TIMEOUT_FACTOR",
    "ExecutorDegradation",
    "PoolSweepExecutor",
    "SupervisedPoolExecutor",
    "SweepExecutor",
    "SweepTask",
    "TaskResult",
    "default_task_timeout",
    "make_sweep_executor",
]
