"""Deterministic content fingerprints for artifact-cache keys.

Python's built-in ``hash`` is randomized per process and the default
``repr`` of arbitrary objects embeds memory addresses, so neither can key
a cache shared between worker processes or persisted across runs.
:func:`fingerprint` canonicalizes a value into a deterministic byte
stream and hashes it with SHA-256:

* primitives, tuples/lists, dicts, and sets serialize structurally
  (dict items and set members are sorted by their canonical encodings,
  so insertion order and per-process string hashing never leak in);
* enums serialize as class + member name;
* dataclasses serialize as class + field items;
* objects exposing a ``cache_token`` string (address streams, branch
  behaviours, partitioners) serialize from that token alone, so mutable
  cursor/iteration state never perturbs a key;
* :class:`~repro.ir.program.ILProgram` serializes through a dedicated
  structural walk covering block layout, successor edges and their
  probabilities, profile counts, and every instruction *including* its
  trace annotations (``mem_stream`` / ``branch_model``), which the
  textual listing omits.

Unsupported types raise :class:`TypeError` — a silent fallback would
turn into silently colliding (or never-hitting) cache keys.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any

from repro.core.registers import RegisterAssignment
from repro.ir.program import ILProgram
from repro.ir.values import ILValue
from repro.isa.registers import Register, all_registers


def fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of ``obj``'s canonical encoding."""
    return hashlib.sha256(_canon(obj).encode("utf-8")).hexdigest()


def _canon(obj: Any) -> str:
    if obj is None:
        return "N"
    if obj is True:
        return "B1"
    if obj is False:
        return "B0"
    if isinstance(obj, int):
        return f"I{obj}"
    if isinstance(obj, float):
        return f"F{obj.hex()}"
    if isinstance(obj, str):
        return f"S{len(obj)}:{obj}"
    if isinstance(obj, bytes):
        return f"Y{obj.hex()}"
    if isinstance(obj, enum.Enum):
        return f"E{type(obj).__name__}.{obj.name}"
    if isinstance(obj, Register):
        return f"R{obj.name}"
    if isinstance(obj, ILValue):
        return (
            f"V({obj.vid},{obj.name},{obj.rclass.name},"
            f"{int(obj.is_stack_pointer)}{int(obj.is_global_pointer)})"
        )
    if isinstance(obj, ILProgram):
        return _canon_program(obj)
    if isinstance(obj, RegisterAssignment):
        ownership = ";".join(
            f"{reg.name}>{','.join(map(str, sorted(obj.clusters_of(reg))))}"
            for reg in all_registers()
        )
        return f"A{obj.num_clusters}[{ownership}]"
    token = getattr(obj, "cache_token", None)
    if isinstance(token, str):
        return f"K{token}"
    if isinstance(obj, (tuple, list)):
        return "T(" + ",".join(_canon(item) for item in obj) + ")"
    if isinstance(obj, (set, frozenset)):
        return "X{" + ",".join(sorted(_canon(item) for item in obj)) + "}"
    if isinstance(obj, dict):
        items = sorted((_canon(k), _canon(v)) for k, v in obj.items())
        return "D{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={_canon(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"C{type(obj).__name__}{{{fields}}}"
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!r}: add a cache_token "
        "property or an explicit handler (a silent fallback would corrupt "
        "cache keys)"
    )


def _canon_program(program: ILProgram) -> str:
    parts = [f"P{program.name}"]
    for value in program.values:
        parts.append(_canon(value))
    for block in program.cfg.blocks():
        edges = ",".join(
            f"{label}@{block.edge_probs.get(label, 0.0).hex()}"
            for label in block.succ_labels
        )
        parts.append(f"L{block.label}#{block.profile_count}[{edges}]")
        for instr in block.instructions:
            parts.append(
                f"{instr.opcode.name}"
                f"({','.join(_canon(src) for src in instr.srcs)})"
                f">{_canon(instr.dest)}"
                f"#{instr.imm}@{instr.target}"
                f"${instr.mem_stream}${instr.branch_model}"
            )
    return "|".join(parts)
