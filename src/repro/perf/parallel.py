"""Process-pool parallel sweep engine (the ``--jobs N`` machinery).

The Section 4 methodology is independent across benchmarks *and* across
the three runs per benchmark, so a Table 2 sweep decomposes into
``len(benchmarks) * 3`` work units.  Each unit is re-derived inside the
worker from ``(benchmark name, part, options)`` — every stage is seeded
and deterministic, so results are bit-identical to the serial path, and
nothing but small inputs and final results crosses the process boundary.

Design notes:

* Workers fork from the parent (where the platform supports it), so
  monkeypatched registries and installed fault injection are inherited —
  PR 1's robustness matrix exercises the pool exactly like the serial
  path, and a worker raising :class:`~repro.errors.ReproError` degrades
  into the same :class:`~repro.experiments.harness.BenchmarkFailure`
  record a serial sweep produces.
* Failures are converted to :class:`BenchmarkFailure` *inside* the
  worker: exception subclasses with mandatory context kwargs do not
  survive pickling faithfully, and the sweep needs the context intact.
* Each worker process holds one process-local
  :class:`~repro.perf.cache.ArtifactCache` (optionally disk-backed, in
  which case all workers share the directory); per-task counter deltas
  are shipped back and merged into the parent's cache stats so hit/miss
  accounting stays correct under ``--jobs N``.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Any, Callable, Optional, Sequence

from repro.errors import ReproError
from repro.experiments.harness import (
    PARTS,
    BenchmarkEvaluation,
    BenchmarkFailure,
    EvaluationOptions,
    PartOutcome,
    assemble_evaluation,
    evaluate_workload,
    evaluate_workload_part,
)
from repro.perf.cache import ArtifactCache, CacheStats

#: The forked worker's process-local artifact cache.
_WORKER_CACHE: Optional[ArtifactCache] = None


def resolve_jobs(jobs: int) -> int:
    """``0`` (or negative) means one worker per CPU core."""
    if jobs >= 1:
        return jobs
    return os.cpu_count() or 1


def _init_worker(cache_dir) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = ArtifactCache(cache_dir)


def _worker_cache() -> ArtifactCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = ArtifactCache()
    return _WORKER_CACHE


def _pool(jobs: int, cache_dir=None) -> ProcessPoolExecutor:
    """A process pool that forks where possible (state inheritance)."""
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    else:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context()
    return ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=context,
        initializer=_init_worker,
        initargs=(cache_dir,),
    )


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int = 1,
    cache_dir=None,
) -> list[Any]:
    """Ordered map over ``items``, serial for ``jobs == 1`` or short input.

    ``fn`` must be a module-level callable (workers import it by name).
    """
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with _pool(jobs, cache_dir) as pool:
        return list(pool.map(fn, items))


# ------------------------------------------------------------- Table 2 sweep
def _sweep_task(item: tuple[str, str, EvaluationOptions]):
    """One (benchmark, part) unit, run inside a worker process.

    Returns ``(name, part, outcome_or_failure, stats_delta)``; a
    :class:`ReproError` anywhere in build/compile/trace/simulate becomes
    a :class:`BenchmarkFailure` here, in the worker, so context survives
    the trip home.
    """
    from repro.workloads.spec92 import SPEC92

    name, part, options = item
    cache = _worker_cache()
    baseline = cache.stats.snapshot()
    try:
        workload = SPEC92[name]()
        outcome = evaluate_workload_part(workload, part, options, cache)
        return name, part, outcome, cache.stats.delta(baseline)
    except ReproError as error:
        failure = BenchmarkFailure.from_error(name, error)
        return name, part, failure, cache.stats.delta(baseline)


def run_table2_parallel(
    names: Sequence[str], options: EvaluationOptions
) -> tuple[dict[str, BenchmarkEvaluation], list[BenchmarkFailure]]:
    """Fan a Table 2 sweep out to worker processes.

    Returns ``(evaluations by name, failures)`` with exactly the rows and
    failure records the serial sweep would produce: a benchmark with any
    failed part yields one failure (the first in part order — the order
    the serial methodology hits them) and no row.
    """
    jobs = resolve_jobs(options.jobs)
    cache = options.cache
    cache_dir = cache.cache_dir if cache is not None else None
    # Workers get a self-contained serial option set; the parent-side
    # cache object is not shipped (each worker holds its own tier).
    worker_options = replace(options, jobs=1, cache=None)
    items = [(name, part, worker_options) for name in names for part in PARTS]

    results: dict[tuple[str, str], Any] = {}
    with _pool(jobs, cache_dir) as pool:
        for name, part, payload, stats_delta in pool.map(_sweep_task, items):
            results[(name, part)] = payload
            if cache is not None:
                cache.stats.merge(stats_delta)

    evaluations: dict[str, BenchmarkEvaluation] = {}
    failures: list[BenchmarkFailure] = []
    for name in names:
        payloads = [results[(name, part)] for part in PARTS]
        failed = [p for p in payloads if isinstance(p, BenchmarkFailure)]
        if failed:
            failures.append(failed[0])
            continue
        outcomes: list[PartOutcome] = payloads
        evaluations[name] = assemble_evaluation(name, outcomes)
    return evaluations, failures


# --------------------------------------------------------- generic eval fan
def _evaluate_task(item: tuple[Any, EvaluationOptions]) -> BenchmarkEvaluation:
    workload, options = item
    return evaluate_workload(workload, options, cache=_worker_cache())


def evaluate_many(
    tasks: Sequence[tuple[Any, EvaluationOptions]],
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
) -> list[BenchmarkEvaluation]:
    """Evaluate ``(workload, options)`` pairs, optionally across workers.

    Used by the ablation and Figure 6 sweeps, whose points are fully
    formed workloads rather than registry names.  Errors propagate (these
    sweeps have no per-row degradation contract).
    """
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [
            evaluate_workload(workload, options, cache=cache)
            for workload, options in tasks
        ]
    cache_dir = cache.cache_dir if cache is not None else None
    items = [
        (workload, replace(options, jobs=1, cache=None))
        for workload, options in tasks
    ]
    with _pool(jobs, cache_dir) as pool:
        return list(pool.map(_evaluate_task, items))
