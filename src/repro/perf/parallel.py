"""Process-pool parallel sweep engine (the ``--jobs N`` machinery).

The Section 4 methodology is independent across benchmarks *and* across
the three runs per benchmark, so a Table 2 sweep decomposes into
``len(benchmarks) * 3`` work units.  Each unit is re-derived inside the
worker from ``(benchmark name, part, options)`` — every stage is seeded
and deterministic, so results are bit-identical to the serial path, and
nothing but small inputs and final results crosses the process boundary.

Design notes:

* Workers fork from the parent (where the platform supports it), so
  monkeypatched registries and installed fault injection are inherited —
  PR 1's robustness matrix exercises the pool exactly like the serial
  path, and a worker raising :class:`~repro.errors.ReproError` degrades
  into the same :class:`~repro.experiments.harness.BenchmarkFailure`
  record a serial sweep produces.
* Failures are converted to :class:`BenchmarkFailure` *inside* the
  worker: exception subclasses with mandatory context kwargs do not
  survive pickling faithfully, and the sweep needs the context intact.
* Each worker process holds one process-local
  :class:`~repro.perf.cache.ArtifactCache` (optionally disk-backed, in
  which case all workers share the directory); per-task counter deltas
  are shipped back and merged into the parent's cache stats so hit/miss
  accounting stays correct under ``--jobs N``.
* Retries run *inside* the worker (``options.retry``), so a transient
  fault costs one worker a re-run, not the whole sweep a round-trip.
* SIGINT/SIGTERM to the parent shuts the sweep down in order: pending
  work units are cancelled, in-flight ones drain (they are seconds-sized),
  every already-completed row has been delivered to the caller (and
  journaled, when a journal is attached), workers exit with the pool —
  no orphans — and the sweep raises
  :class:`~repro.errors.SweepInterrupted` (exit code 130) so a follow-up
  ``--resume`` picks up cleanly.  Workers ignore SIGINT themselves: the
  parent owns cancellation, so a Ctrl-C delivered to the process group
  cannot half-kill the pool.
* The fan-out machinery itself lives behind
  :class:`~repro.perf.executor.SweepExecutor`
  (:mod:`repro.perf.executor`): ``--executor pool`` is the trusting
  pool above; ``--executor supervised`` adds per-task deadlines,
  dead/wedged-worker detection, bounded re-dispatch, and a circuit
  breaker that finishes the sweep serially instead of hanging — the
  multi-host failure model from the ROADMAP, exercised single-host.
"""

from __future__ import annotations

import os
import signal
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import replace
from typing import Any, Callable, Optional, Sequence

from repro.errors import ConfigError, ReproError, SweepInterrupted
from repro.experiments.harness import (
    PARTS,
    BenchmarkEvaluation,
    BenchmarkFailure,
    EvaluationOptions,
    PartOutcome,
    assemble_evaluation,
    evaluate_part_with_retry,
    evaluate_workload_retrying,
)
from repro.perf.cache import ArtifactCache
from repro.perf.executor import (
    SweepTask,
    _pool,
    _worker_cache,
    make_sweep_executor,
)

#: Hard ceiling on explicit ``--jobs`` relative to the machine: beyond
#: this the request is a typo (e.g. ``--jobs 1200`` for ``--jobs 12``),
#: not a tuning choice — oversubscription past ~4x cores only thrashes.
MAX_JOBS_FACTOR = 4
MAX_JOBS_FLOOR = 64


def resolve_jobs(jobs: int) -> int:
    """Validate and resolve a ``--jobs`` request.

    ``0`` means one worker per CPU core (the documented auto mode).
    Negative values and absurd oversubscription (more than
    ``max(4 * cores, 64)``) are configuration errors, not values to
    silently clamp — a typo'd sweep should fail loudly before forking.
    """
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigError(
            f"--jobs must be >= 0 (0 = one worker per core), got {jobs}",
            jobs=jobs,
        )
    ceiling = max(MAX_JOBS_FACTOR * (os.cpu_count() or 1), MAX_JOBS_FLOOR)
    if jobs > ceiling:
        raise ConfigError(
            f"--jobs {jobs} exceeds the sanity ceiling of {ceiling} "
            f"(4x this machine's cores); this is almost certainly a typo",
            jobs=jobs,
            ceiling=ceiling,
        )
    return jobs


@contextmanager
def sweep_signals():
    """Deliver SIGTERM (and SIGINT) as ``KeyboardInterrupt`` to the sweep.

    SIGINT already raises ``KeyboardInterrupt``; SIGTERM — what service
    managers and CI runners send first — normally kills the process
    outright, orphaning workers and tearing the journal's final line.
    Inside this context both funnel into the sweep's orderly-shutdown
    path.  No-op outside the main thread (signal handlers are
    main-thread-only; nested sweeps keep the outer handler).
    """
    previous = {}
    def _interrupt(signum, frame):
        raise KeyboardInterrupt(f"signal {signum}")

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _interrupt)
        except ValueError:  # not the main thread
            pass
    try:
        yield
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)


def _interrupted(pool: ProcessPoolExecutor, futures, cause: str) -> SweepInterrupted:
    """Orderly shutdown after an interrupt; returns the error to raise."""
    cancelled = 0
    for future in futures:
        if future.cancel():
            cancelled += 1
    pool.shutdown(wait=True, cancel_futures=True)
    return SweepInterrupted(
        "sweep interrupted; completed rows are journaled and the run is "
        "resumable with --resume",
        cause=cause,
        cancelled_units=cancelled,
    )


def _executor_interrupted(executor, cause: str) -> SweepInterrupted:
    """Orderly executor shutdown after an interrupt; returns the error."""
    cancelled = executor.cancel()
    return SweepInterrupted(
        "sweep interrupted; completed rows are journaled and the run is "
        "resumable with --resume",
        cause=cause,
        cancelled_units=cancelled,
    )


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int = 1,
    cache_dir=None,
) -> list[Any]:
    """Ordered map over ``items``, serial for ``jobs == 1`` or short input.

    ``fn`` must be a module-level callable (workers import it by name).
    """
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with _pool(jobs, cache_dir) as pool, sweep_signals():
        try:
            return list(pool.map(fn, items))
        except (KeyboardInterrupt, BrokenProcessPool) as error:
            raise _interrupted(pool, (), type(error).__name__) from None


# ------------------------------------------------------------- Table 2 sweep
def _sweep_task(item: tuple[str, str, EvaluationOptions]):
    """One (benchmark, part) unit, run inside a worker process.

    Returns ``(name, part, outcome_or_failure, attempts, stats_delta)``;
    the options' retry policy runs here, in the worker, and a
    :class:`ReproError` that survives it becomes a
    :class:`BenchmarkFailure` here too, so context (including the
    failing part, attempt count, and failure class) survives the trip
    home.
    """
    from repro.workloads.spec92 import SPEC92

    name, part, options = item
    cache = _worker_cache()
    baseline = cache.stats.snapshot()
    try:
        workload = SPEC92[name]()
        outcome, attempts = evaluate_part_with_retry(workload, part, options, cache)
        return name, part, outcome, attempts, cache.stats.delta(baseline)
    except ReproError as error:
        failure = BenchmarkFailure.from_error(name, error)
        attempts = error.context.get("attempts", 1)
        return name, part, failure, attempts, cache.stats.delta(baseline)


def run_table2_parallel(
    names: Sequence[str],
    options: EvaluationOptions,
    on_benchmark: Optional[Callable[[str, Any, int], None]] = None,
    on_event: Optional[Callable[[str, dict], None]] = None,
) -> tuple[dict[str, BenchmarkEvaluation], list[BenchmarkFailure]]:
    """Fan a Table 2 sweep out to worker processes.

    Returns ``(evaluations by name, failures)`` with exactly the rows and
    failure records the serial sweep would produce: a benchmark with any
    failed part yields one failure (the first in part order — the order
    the serial methodology hits them) and no row.

    ``on_benchmark(name, evaluation_or_failure, attempts)`` fires in the
    parent the moment a benchmark's three parts are all home — the
    journaling hook: each finished row is durable before the sweep moves
    on, so a kill at any point loses at most in-flight benchmarks.
    Interrupts raise :class:`~repro.errors.SweepInterrupted` after every
    finished row has been delivered.

    ``on_event(kind, payload)`` fires for executor-level incidents that
    are not row outcomes — today only ``"executor_degradation"``, when
    the supervised executor's circuit breaker abandoned its workers and
    finished the sweep serially (the rows are still bit-identical; the
    event is the audit trail).
    """
    jobs = resolve_jobs(options.jobs)
    cache = options.cache
    cache_dir = cache.cache_dir if cache is not None else None
    # Workers get a self-contained serial option set; the parent-side
    # cache object is not shipped (each worker holds its own tier),
    # worker-fault injection must not recurse into the task itself, and
    # the span writer's open file stays in the parent (distributed
    # workers journal their own span shards via the task frame).
    worker_options = replace(
        options, jobs=1, cache=None, worker_fault_plan=None, spans=None
    )
    tasks = [
        SweepTask(benchmark=name, part=part, options=worker_options)
        for name in names
        for part in PARTS
    ]

    results: dict[tuple[str, str], Any] = {}
    attempts_by_name: dict[str, int] = {name: 0 for name in names}
    evaluations: dict[str, BenchmarkEvaluation] = {}
    failures_by_name: dict[str, BenchmarkFailure] = {}

    def _finish_benchmark(name: str) -> None:
        payloads = [results[(name, part)] for part in PARTS]
        failed = [p for p in payloads if isinstance(p, BenchmarkFailure)]
        if failed:
            outcome: Any = failed[0]
            failures_by_name[name] = failed[0]
        else:
            outcomes: list[PartOutcome] = payloads
            outcome = assemble_evaluation(name, outcomes)
            evaluations[name] = outcome
        if on_benchmark is not None:
            on_benchmark(name, outcome, attempts_by_name[name])

    executor = make_sweep_executor(
        options.executor,
        _sweep_task,
        jobs,
        cache_dir,
        trace_length=options.trace_length,
        task_timeout=options.task_timeout,
        redispatch_budget=options.redispatch_budget,
        worker_fault_plan=options.worker_fault_plan,
        seed=options.trace_seed,
        self_check=options.self_check,
        engine=options.engine,
        dist_bind=options.dist_host,
        dist_port=options.dist_port,
        dist_min_hosts=options.dist_min_hosts,
        dist_wait_s=options.dist_wait_s,
        spans=options.spans,
    )
    with executor, sweep_signals():
        try:
            for task in tasks:
                executor.submit(task)
            while executor.outstanding:
                for task_result in executor.poll():
                    name, part, payload, attempts, stats_delta = task_result.value
                    results[(name, part)] = payload
                    attempts_by_name[name] += attempts
                    if cache is not None:
                        cache.stats.merge(stats_delta)
                    if all((name, p) in results for p in PARTS):
                        _finish_benchmark(name)
        except (KeyboardInterrupt, BrokenProcessPool) as error:
            raise _executor_interrupted(executor, type(error).__name__) from None
    if on_event is not None:
        # The distributed coordinator's cascade can degrade more than
        # once (remote -> supervised -> serial); journal every step.
        for degradation in executor.degradations:
            on_event("executor_degradation", degradation.as_dict())
    registry = getattr(executor, "metrics", None)
    if options.spans is not None and registry is not None:
        # Final executor metrics — including the distributed
        # coordinator's per-host labeled series — land next to the span
        # files, in the Prometheus text format 'repro stats' also speaks.
        from repro.obs.export import write_prometheus

        write_prometheus(
            options.spans.run_dir / "executor-metrics.prom", registry
        )

    failures = [failures_by_name[n] for n in names if n in failures_by_name]
    return evaluations, failures


# --------------------------------------------------------- generic eval fan
def _evaluate_task(item: tuple[Any, EvaluationOptions]) -> BenchmarkEvaluation:
    workload, options = item
    return evaluate_workload_retrying(workload, options, cache=_worker_cache())


def evaluate_many(
    tasks: Sequence[tuple[Any, EvaluationOptions]],
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    on_result: Optional[Callable[[int, BenchmarkEvaluation], None]] = None,
) -> list[BenchmarkEvaluation]:
    """Evaluate ``(workload, options)`` pairs, optionally across workers.

    Used by the ablation and Figure 6 sweeps, whose points are fully
    formed workloads rather than registry names.  Errors propagate (these
    sweeps have no per-row degradation contract), but each point runs
    under the options' retry policy first.  ``on_result(index, result)``
    fires per completed point — again the journaling hook — and
    interrupts raise :class:`~repro.errors.SweepInterrupted` after the
    completed points are delivered.
    """
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        out = []
        for index, (workload, options) in enumerate(tasks):
            result = evaluate_workload_retrying(workload, options, cache=cache)
            if on_result is not None:
                on_result(index, result)
            out.append(result)
        return out
    cache_dir = cache.cache_dir if cache is not None else None
    items = [
        (workload, replace(options, jobs=1, cache=None))
        for workload, options in tasks
    ]
    results: list[Optional[BenchmarkEvaluation]] = [None] * len(items)
    with _pool(jobs, cache_dir) as pool, sweep_signals():
        future_index = {
            pool.submit(_evaluate_task, item): index
            for index, item in enumerate(items)
        }
        pending = set(future_index)
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = future_index[future]
                    results[index] = future.result()
                    if on_result is not None:
                        on_result(index, results[index])
        except (KeyboardInterrupt, BrokenProcessPool) as error:
            raise _interrupted(pool, pending, type(error).__name__) from None
    return results  # type: ignore[return-value]
