"""Content-keyed artifact cache for compilation results and traces.

The experiment stack recomputes two expensive, fully deterministic
artifacts over and over: :func:`repro.compiler.pipeline.compile_program`
outputs and :meth:`repro.workloads.tracegen.TraceGenerator.generate`
outputs.  Both are pure functions of their inputs, so a sweep only needs
to pay for what changed (the gem5-style flow).  Keys are built from
:func:`repro.perf.fingerprint.fingerprint` over every input that can
change the artifact:

* **compile key** — workload name, IL program content (including trace
  annotations), register assignment ownership map, partitioner token,
  and :class:`~repro.compiler.pipeline.CompilerOptions`;
* **trace key** — the compile key (the trace is generated from the
  compiled binary), address-stream tokens, branch-behaviour tokens, the
  trace seed, the trace length, and the loop-restart flag.

Two tiers:

* **memory** — a per-process dict, always on; within one process a
  repeated (compile, trace) pair is returned by reference, exactly as
  the pre-cache serial code shared them.
* **disk** — optional, enabled by constructing with a directory
  (``~/.cache/repro`` by default via :func:`default_cache_dir`, or the
  CLI's ``--cache-dir``).  Artifacts are pickled atomically
  (write-to-temp + rename), so concurrent sweep workers can share one
  directory; a corrupt or unreadable entry degrades to a miss, never an
  error.

All traffic is counted in :attr:`ArtifactCache.stats` so experiments can
surface hit/miss behaviour, and sweeps can prove a warm cache skipped
recompilation.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Optional

from repro.perf.fingerprint import fingerprint

#: Artifact kinds tracked by distinct hit/miss counters.
KINDS = ("compile", "trace")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


@dataclass
class CacheStats:
    """Hit/miss counters, by artifact kind and by tier."""

    compile_hits: int = 0
    compile_misses: int = 0
    trace_hits: int = 0
    trace_misses: int = 0
    #: Hits served by unpickling a disk entry (also counted in the
    #: per-kind hit counter).
    disk_hits: int = 0
    disk_writes: int = 0
    invalidations: int = 0

    @property
    def hits(self) -> int:
        return self.compile_hits + self.trace_hits

    @property
    def misses(self) -> int:
        return self.compile_misses + self.trace_misses

    def snapshot(self) -> "CacheStats":
        return replace(self)

    def delta(self, baseline: "CacheStats") -> "CacheStats":
        """Counter-wise ``self - baseline`` (for per-task accounting)."""
        return CacheStats(
            **{
                f.name: getattr(self, f.name) - getattr(baseline, f.name)
                for f in fields(self)
            }
        )

    def merge(self, other: "CacheStats") -> None:
        """Counter-wise accumulate ``other`` into ``self``."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        out: dict = {f.name: getattr(self, f.name) for f in fields(self)}
        out["hits"] = self.hits
        out["misses"] = self.misses
        out["hit_rate"] = round(self.hit_rate, 6)
        return out

    def format(self) -> str:
        return (
            f"artifact cache: compile {self.compile_hits} hit"
            f"/{self.compile_misses} miss, "
            f"trace {self.trace_hits} hit/{self.trace_misses} miss, "
            f"disk {self.disk_hits} read/{self.disk_writes} write"
        )


class ArtifactCache:
    """Two-tier (memory + optional disk) content-keyed artifact store."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None) -> None:
        """
        Args:
            cache_dir: directory for the persistent tier; ``None`` keeps
                the cache in-memory only.  Created on first write.
        """
        self._memory: dict[str, Any] = {}
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.stats = CacheStats()

    # ------------------------------------------------------------- internals
    def _path(self, kind: str, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{kind}-{key}.pkl"

    def _count(self, kind: str, hit: bool) -> None:
        field = f"{kind}_{'hits' if hit else 'misses'}"
        setattr(self.stats, field, getattr(self.stats, field) + 1)

    # ----------------------------------------------------------------- API
    def get(self, kind: str, key: str) -> Optional[Any]:
        """Return the cached artifact, or ``None`` on a miss."""
        memory_key = f"{kind}:{key}"
        if memory_key in self._memory:
            self._count(kind, hit=True)
            return self._memory[memory_key]
        if self.cache_dir is not None:
            path = self._path(kind, key)
            try:
                with path.open("rb") as fh:
                    value = pickle.load(fh)
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
                pass  # absent or corrupt entry: a miss, never an error
            else:
                self._memory[memory_key] = value
                self._count(kind, hit=True)
                self.stats.disk_hits += 1
                return value
        self._count(kind, hit=False)
        return None

    def put(self, kind: str, key: str, value: Any) -> None:
        """Store an artifact in both tiers (atomic on disk)."""
        self._memory[f"{kind}:{key}"] = value
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._path(kind, key)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.cache_dir, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return  # a full/read-only disk degrades to memory-only
        self.stats.disk_writes += 1

    def invalidate(
        self, kind: Optional[str] = None, key: Optional[str] = None
    ) -> int:
        """Explicitly drop entries from both tiers.

        Args:
            kind: restrict to one artifact kind (``None`` = all).
            key: restrict to one key (requires ``kind``).

        Returns:
            The number of memory entries dropped.
        """
        if key is not None and kind is None:
            raise ValueError("invalidate(key=...) requires kind=...")
        if kind is not None and kind not in KINDS:
            raise ValueError(f"unknown artifact kind {kind!r}; valid: {KINDS}")
        prefix = f"{kind}:{key}" if key is not None else (
            f"{kind}:" if kind is not None else ""
        )
        victims = [k for k in self._memory if k.startswith(prefix)]
        for memory_key in victims:
            del self._memory[memory_key]
        if self.cache_dir is not None and self.cache_dir.is_dir():
            if key is not None:
                patterns = [f"{kind}-{key}.pkl"]
            elif kind is not None:
                patterns = [f"{kind}-*.pkl"]
            else:
                patterns = [f"{k}-*.pkl" for k in KINDS]
            for pattern in patterns:
                for path in self.cache_dir.glob(pattern):
                    try:
                        path.unlink()
                    except OSError:
                        pass
        self.stats.invalidations += 1
        return len(victims)

    def __len__(self) -> int:
        return len(self._memory)


# ------------------------------------------------------------------ keys
def compile_key(workload_name, program, assignment, partitioner, options) -> str:
    """Cache key for one :func:`compile_program` invocation."""
    return fingerprint(
        (
            "compile/v1",
            workload_name,
            program,
            assignment,
            partitioner if partitioner is not None else "partitioner:none",
            options,
        )
    )


def trace_key(
    compile_fingerprint: str,
    streams,
    behaviors,
    seed: int,
    length: int,
    loop_program: bool = True,
) -> str:
    """Cache key for one ``TraceGenerator.generate`` invocation.

    The compiled binary is identified by its compile key: anything that
    changes the binary changes the trace.
    """
    return fingerprint(
        ("trace/v1", compile_fingerprint, streams, behaviors, seed, length, loop_program)
    )
