"""Command-line interface for the reproduction's experiments.

Usage (after ``pip install -e .`` / ``python setup.py develop``)::

    python -m repro table2 [--trace-length N] [--benchmarks a b ...]
    python -m repro scenarios
    python -m repro figure6
    python -m repro cycle-time [--trace-length N]
    python -m repro ablations [--benchmark NAME] [--trace-length N]
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _evaluation_options(args: argparse.Namespace):
    from repro.experiments.harness import EvaluationOptions

    return EvaluationOptions(
        trace_length=args.trace_length,
        self_check=getattr(args, "self_check", False),
        cycle_budget=getattr(args, "cycle_budget", 0),
    )


def _cmd_table2(args: argparse.Namespace) -> None:
    from repro.experiments.table2 import format_table2, run_table2

    result = run_table2(args.benchmarks or None, _evaluation_options(args))
    print(format_table2(result, detailed=args.detailed))
    if result.failures:
        print(
            f"warning: {len(result.failures)} benchmark(s) failed; see the "
            "failure table above",
            file=sys.stderr,
        )


def _cmd_scenarios(_args: argparse.Namespace) -> None:
    from repro.experiments.scenarios import format_timeline, run_all_scenarios

    for timeline in run_all_scenarios():
        print(format_timeline(timeline))
        print()


def _cmd_figure6(_args: argparse.Namespace) -> None:
    from repro.experiments.figure6 import main as figure6_main

    figure6_main()


def _cmd_cycle_time(args: argparse.Namespace) -> None:
    from repro.experiments.cycle_time import (
        format_cycle_time_analysis,
        run_cycle_time_analysis,
    )
    from repro.experiments.table2 import run_table2
    from repro.timing.analysis import format_cycle_time_report

    print(format_cycle_time_report())
    print()
    table2 = run_table2(args.benchmarks or None, _evaluation_options(args))
    print(format_cycle_time_analysis(run_cycle_time_analysis(table2)))


def _cmd_ablations(args: argparse.Namespace) -> None:
    from repro.experiments.ablations import (
        run_assignment_ablation,
        run_buffer_depth_ablation,
        run_global_widening_ablation,
        run_imbalance_scope_ablation,
        run_partitioner_ablation,
        run_queue_size_ablation,
        run_threshold_ablation,
        run_unroll_ablation,
    )
    from repro.workloads.spec92 import SPEC92

    build = SPEC92[args.benchmark]
    sweeps = {
        "threshold": run_threshold_ablation,
        "buffers": run_buffer_depth_ablation,
        "partitioner": run_partitioner_ablation,
        "assignment": run_assignment_ablation,
        "unroll": run_unroll_ablation,
        "globals": run_global_widening_ablation,
        "queue": run_queue_size_ablation,
        "scope": run_imbalance_scope_ablation,
    }
    selected = args.sweeps or list(sweeps)
    for name in selected:
        result = sweeps[name](build, trace_length=args.trace_length)
        print(result.format())
        print()


def _add_robustness_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="enable the simulator's per-cycle invariant checker "
        "(observational; cycle counts are unchanged)",
    )
    parser.add_argument(
        "--cycle-budget",
        type=int,
        default=0,
        metavar="N",
        help="watchdog cycle budget per simulation (0 = derived default)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multicluster Architecture reproduction (MICRO-30 1997)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t2 = sub.add_parser("table2", help="regenerate Table 2")
    t2.add_argument("--trace-length", type=int, default=120_000)
    t2.add_argument("--benchmarks", nargs="*", default=None)
    t2.add_argument("--detailed", action="store_true", default=True)
    _add_robustness_flags(t2)
    t2.set_defaults(func=_cmd_table2)

    sc = sub.add_parser("scenarios", help="Figures 2-5 execution timelines")
    sc.set_defaults(func=_cmd_scenarios)

    f6 = sub.add_parser("figure6", help="the Figure 6 worked example")
    f6.set_defaults(func=_cmd_figure6)

    ct = sub.add_parser("cycle-time", help="the Section 4.2/5 analysis")
    ct.add_argument("--trace-length", type=int, default=40_000)
    ct.add_argument("--benchmarks", nargs="*", default=None)
    _add_robustness_flags(ct)
    ct.set_defaults(func=_cmd_cycle_time)

    ab = sub.add_parser("ablations", help="design-choice sweeps")
    ab.add_argument("--benchmark", default="compress")
    ab.add_argument("--trace-length", type=int, default=20_000)
    ab.add_argument(
        "--sweeps",
        nargs="*",
        choices=[
            "threshold", "buffers", "partitioner", "assignment",
            "unroll", "globals", "queue", "scope",
        ],
        default=None,
    )
    ab.set_defaults(func=_cmd_ablations)

    rp = sub.add_parser("report", help="regenerate everything into REPORT.md")
    rp.add_argument("--trace-length", type=int, default=40_000)
    rp.add_argument("--output", default="REPORT.md")
    rp.set_defaults(func=_cmd_report)

    ra = sub.add_parser(
        "reassignment", help="dynamic register reassignment demo (Section 6)"
    )
    ra.add_argument("--phase-length", type=int, default=2000)
    ra.set_defaults(func=_cmd_reassignment)
    return parser


def _cmd_reassignment(args: argparse.Namespace) -> None:
    from repro.experiments.reassignment import (
        format_reassignment_result,
        run_reassignment_demo,
    )

    print(format_reassignment_result(run_reassignment_demo(args.phase_length)))


def _cmd_report(args: argparse.Namespace) -> None:
    from repro.experiments.report import write_report

    report = write_report(args.output, trace_length=args.trace_length)
    print(f"wrote {args.output} ({len(report.markdown)} bytes)")
    print(f"figure 6 matches paper: {report.figure6.matches_paper}")


def main(argv: Optional[Sequence[str]] = None) -> None:
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        args.func(args)
    except ReproError as error:
        # One-line diagnostic instead of a traceback; the exit code
        # distinguishes configuration (2) from simulation (3) failures.
        print(f"error: {error.brief()}", file=sys.stderr)
        raise SystemExit(error.exit_code) from None


if __name__ == "__main__":  # pragma: no cover
    main()
