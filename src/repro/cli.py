"""Command-line interface for the reproduction's experiments.

Usage (after ``pip install -e .`` / ``python setup.py develop``)::

    python -m repro table2 [--trace-length N] [--benchmarks a b ...] [--jobs N]
                           [--retries N] [--resume DIR] [--shard NAME]
                           [--executor pool|supervised|distributed]
                           [--task-timeout S] [--redispatch-budget N]
                           [--dist-port P] [--dist-min-hosts N] [--dist-wait S]
                           [--spans] [--spans-dir DIR]
    python -m repro worker serve --connect HOST:PORT [--host NAME]
                           [--run-dir DIR] [--cache-dir DIR]
                           [--fault-plan FILE] [--connect-retries N]
    python -m repro scenarios
    python -m repro figure6 [--sweep] [--jobs N] [--resume DIR]
    python -m repro cycle-time [--trace-length N] [--jobs N]
    python -m repro ablations [--benchmark NAME] [--trace-length N] [--jobs N]
                              [--retries N] [--resume DIR]
    python -m repro explore [--driver random|grid|evolutionary|halving]
                            [--seed N] [--budget N] [--population N]
                            [--generations N] [--trace-length N] [--jobs N]
                            [--trajectory FILE] [--frontier FILE]
                            [--resume DIR]
    python -m repro bench [--quick] [--jobs N] [--output BENCH_table2.json]
    python -m repro replay BUNDLE.json
    python -m repro chaos [--quick] [--seed N] [--rounds N] [--run-dir DIR]
                          [--worker-faults] [--host-faults [--hosts N]]
    python -m repro journal merge SHARD [SHARD ...] --output DIR [--dry-run]
    python -m repro spans summarize RUN_DIR
    python -m repro spans export RUN_DIR [--format chrome] --output FILE
    python -m repro top RUN_DIR [--once] [--interval S]
    python -m repro trace BENCHMARK [--machine single|dual|dual-local]
                          [--window A B] [--jsonl FILE]
    python -m repro stats BENCHMARK [--machine ...] [--json FILE] [--prom FILE]

Diagnostics go through stdlib ``logging`` (logger namespace ``repro.*``):
``-v`` turns on debug detail, ``--quiet`` silences everything below
errors.  Results always go to stdout.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Optional, Sequence

log = logging.getLogger("repro.cli")


def setup_logging(verbosity: int = 0, quiet: bool = False) -> None:
    """Configure the ``repro`` logger tree for one CLI invocation.

    Diagnostics (cache stats, sweep heartbeats, warnings) flow through
    ``logging`` to stderr; ``-v`` selects DEBUG with logger-name
    prefixes, ``--quiet`` drops everything below ERROR.  The handler is
    rebuilt on every call so it always binds the *current*
    ``sys.stderr`` (pytest's capture swaps it between tests).
    """
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    if verbosity >= 1:
        level = logging.DEBUG
        handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
    else:
        level = logging.ERROR if quiet else logging.INFO
        handler.setFormatter(logging.Formatter("%(message)s"))
    root.setLevel(level)
    root.addHandler(handler)
    root.propagate = False


def _make_cache(args: argparse.Namespace):
    """The artifact cache requested by --cache / --cache-dir (or None)."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None and getattr(args, "cache", False):
        from repro.perf.cache import default_cache_dir

        cache_dir = default_cache_dir()
    if cache_dir is None:
        return None
    from repro.perf.cache import ArtifactCache

    return ArtifactCache(cache_dir)


def _make_retry(args: argparse.Namespace):
    """The retry policy requested by --retries (or None for one attempt)."""
    retries = getattr(args, "retries", 1)
    if retries is None or retries <= 1:
        return None
    from repro.robustness.retry import RetryPolicy

    return RetryPolicy(max_attempts=retries)


def _make_journal(args: argparse.Namespace):
    """The run journal requested by --resume DIR [--shard NAME] (or None)."""
    from repro.robustness.journal import open_journal

    return open_journal(
        getattr(args, "resume", None), shard=getattr(args, "shard", None)
    )


def _make_spans(args: argparse.Namespace):
    """The span writer requested by --spans / --spans-dir (or None).

    ``--spans-dir DIR`` names the sink directory explicitly; bare
    ``--spans`` writes next to the journal (``--resume DIR``) or into
    the current directory.  ``--shard NAME`` shards the span file the
    same way it shards the journal.
    """
    spans_dir = getattr(args, "spans_dir", None)
    if spans_dir is None and getattr(args, "spans", False):
        spans_dir = getattr(args, "resume", None) or "."
    if spans_dir is None:
        return None
    from repro.obs.spans import SpanWriter

    return SpanWriter(spans_dir, shard=getattr(args, "shard", None))


def _evaluation_options(args: argparse.Namespace):
    from repro.experiments.harness import EvaluationOptions

    return EvaluationOptions(
        trace_length=args.trace_length,
        self_check=getattr(args, "self_check", False),
        cycle_budget=getattr(args, "cycle_budget", 0),
        jobs=getattr(args, "jobs", 1),
        cache=_make_cache(args),
        retry=_make_retry(args),
        executor=getattr(args, "executor", "pool"),
        task_timeout=getattr(args, "task_timeout", None),
        redispatch_budget=getattr(args, "redispatch_budget", 2),
        engine=getattr(args, "engine", None),
        dist_host=getattr(args, "dist_bind", "127.0.0.1"),
        dist_port=getattr(args, "dist_port", 0),
        dist_min_hosts=getattr(args, "dist_min_hosts", 1),
        dist_wait_s=getattr(args, "dist_wait", 10.0),
        spans=_make_spans(args),
    )


def _report_cache(options) -> None:
    if options.cache is not None:
        log.info("%s", options.cache.stats.format())


def _cmd_table2(args: argparse.Namespace) -> None:
    from repro.experiments.table2 import format_table2, run_table2

    options = _evaluation_options(args)
    journal = _make_journal(args)
    try:
        result = run_table2(args.benchmarks or None, options, journal=journal)
    finally:
        if journal is not None:
            journal.close()
        if options.spans is not None:
            options.spans.close()
    print(format_table2(result, detailed=args.detailed))
    if options.spans is not None:
        log.info(
            "spans: %d emitted -> %s", options.spans.emitted, options.spans.path
        )
    _report_cache(options)
    if result.failures:
        log.warning(
            "warning: %d benchmark(s) failed; see the failure table above",
            len(result.failures),
        )


def _cmd_scenarios(_args: argparse.Namespace) -> None:
    from repro.experiments.scenarios import format_timeline, run_all_scenarios

    for timeline in run_all_scenarios():
        print(format_timeline(timeline))
        print()


def _cmd_figure6(args: argparse.Namespace) -> None:
    from repro.experiments.figure6 import main as figure6_main

    if not getattr(args, "sweep", False):
        figure6_main()
        return
    from repro.experiments.figure6 import run_figure6_sweep

    journal = _make_journal(args)
    try:
        results = run_figure6_sweep(
            jobs=getattr(args, "jobs", 1), journal=journal
        )
    finally:
        if journal is not None:
            journal.close()
    print("Figure 6 walk-through across imbalance thresholds")
    for threshold, result in results:
        print(
            f"  threshold={threshold}: blocks={result.block_order} "
            f"order={result.assignment_order} "
            f"matches_paper={result.matches_paper}"
        )


def _cmd_cycle_time(args: argparse.Namespace) -> None:
    from repro.experiments.cycle_time import (
        format_cycle_time_analysis,
        run_cycle_time_analysis,
    )
    from repro.experiments.table2 import run_table2
    from repro.timing.analysis import format_cycle_time_report

    print(format_cycle_time_report())
    print()
    options = _evaluation_options(args)
    table2 = run_table2(args.benchmarks or None, options)
    print(format_cycle_time_analysis(run_cycle_time_analysis(table2)))
    _report_cache(options)


def _cmd_explore(args: argparse.Namespace) -> None:
    from repro.gym.drivers import SearchSpec, run_search
    from repro.gym.fitness import GymSettings
    from repro.gym.report import (
        format_frontier,
        frontier_record,
        header_record,
        trial_record,
        write_frontier,
        write_trajectory,
    )
    from repro.gym.space import DesignSpace

    settings = GymSettings(
        benchmarks=(
            tuple(args.benchmarks) if args.benchmarks else GymSettings().benchmarks
        ),
        trace_length=args.trace_length,
        trace_seed=args.trace_seed,
        tech=args.tech,
        part=args.part,
        engine=getattr(args, "engine", None),
        self_check=getattr(args, "self_check", False),
        cycle_budget=getattr(args, "cycle_budget", 0),
    )
    spec = SearchSpec(
        driver=args.driver,
        seed=args.seed,
        budget=args.budget,
        population=args.population,
        generations=args.generations,
        elite=args.elite,
        tournament=args.tournament,
        mutation_rate=args.mutation_rate,
        eta=args.eta,
    )
    space = DesignSpace(max_clusters=args.max_clusters)
    cache = _make_cache(args)
    journal = _make_journal(args)
    spans = _make_spans(args)
    try:
        result = run_search(
            spec,
            space,
            settings,
            jobs=getattr(args, "jobs", 1),
            cache=cache,
            journal=journal,
            spans=spans,
        )
    finally:
        if journal is not None:
            journal.close()
        if spans is not None:
            spans.close()
    if spans is not None:
        log.info("spans: %d emitted -> %s", spans.emitted, spans.path)
    if args.trajectory:
        records = [header_record(spec.driver, spec.seed, settings, result.baseline)]
        records.extend(trial_record(i, g, t) for i, g, t in result.trials)
        records.append(frontier_record(result.frontier))
        write_trajectory(args.trajectory, records)
        log.info("trajectory: %s", args.trajectory)
    if args.frontier:
        write_frontier(args.frontier, result.frontier)
        log.info("frontier: %s", args.frontier)
    print(format_frontier(result.frontier, result.baseline))
    best = result.best
    if best is not None:
        print(
            f"\nbest speedup: {best.point.slug} ({best.speedup:.4f}x over the "
            f"1x8-way baseline; {len(result.trials)} trials, "
            f"{result.journal_hits} replayed from the journal)"
        )
    if cache is not None:
        log.info("%s", cache.stats.format())


def _cmd_ablations(args: argparse.Namespace) -> None:
    from repro.experiments.ablations import (
        run_assignment_ablation,
        run_buffer_depth_ablation,
        run_global_widening_ablation,
        run_imbalance_scope_ablation,
        run_partitioner_ablation,
        run_queue_size_ablation,
        run_threshold_ablation,
        run_unroll_ablation,
    )
    from repro.workloads.spec92 import SPEC92

    build = SPEC92[args.benchmark]
    sweeps = {
        "threshold": run_threshold_ablation,
        "buffers": run_buffer_depth_ablation,
        "partitioner": run_partitioner_ablation,
        "assignment": run_assignment_ablation,
        "unroll": run_unroll_ablation,
        "globals": run_global_widening_ablation,
        "queue": run_queue_size_ablation,
        "scope": run_imbalance_scope_ablation,
    }
    selected = args.sweeps or list(sweeps)
    journal = _make_journal(args)
    retry = _make_retry(args)
    try:
        for name in selected:
            kwargs = dict(
                trace_length=args.trace_length,
                jobs=getattr(args, "jobs", 1),
                journal=journal,
            )
            if name != "queue":  # the queue sweep is raw simulate(), no retry
                kwargs["retry"] = retry
            result = sweeps[name](build, **kwargs)
            print(result.format())
            print()
    finally:
        if journal is not None:
            journal.close()


def _cmd_trace(args: argparse.Namespace) -> None:
    from repro.obs.runner import observe_benchmark
    from repro.uarch.pipeline_view import render_pipeline

    run = observe_benchmark(
        args.benchmark,
        args.machine,
        trace_length=args.trace_length,
        record_events=True,
        jsonl=args.jsonl,
        sample_interval=None,
        attribute_stalls=False,
        cache=_make_cache(args),
        engine=args.engine,
    )
    first, last = args.window
    print(f"{args.benchmark} on {run.result.config_name}: {run.result.cycles} cycles")
    print(
        render_pipeline(
            run.recorder,
            run.trace,
            first_seq=first,
            last_seq=last,
            max_width=args.max_width,
        )
    )
    if args.jsonl:
        log.info(
            "streamed %d events to %s", run.recorder.recorded, args.jsonl
        )


def _cmd_stats(args: argparse.Namespace) -> None:
    from repro.errors import ConfigError
    from repro.obs import stall
    from repro.obs.export import stats_document, write_prometheus, write_stats_json
    from repro.obs.runner import observe_benchmark
    from repro.perf.cache import ArtifactCache

    machines = ["single", "dual"] if args.machine == "both" else [args.machine]
    if args.prom and len(machines) != 1:
        raise ConfigError(
            "--prom exports one run's metrics; pick one with --machine "
            "single|dual|dual-local"
        )
    # One shared cache: the two machines reuse the same native binary
    # and trace, so the second run skips compile + tracegen.
    cache = _make_cache(args) or ArtifactCache()
    runs = [
        observe_benchmark(
            args.benchmark,
            machine,
            trace_length=args.trace_length,
            sample_interval=args.interval,
            cache=cache,
            engine=args.engine,
        )
        for machine in machines
    ]
    for run in runs:
        print(f"== {args.benchmark} on {run.result.config_name} ==")
        print(run.stats.summary())
        print()
        print(stall.format_report(run.stats.stall_attribution, label=run.machine))
        print()
    if len(runs) >= 2:
        print(
            stall.diff_reports(
                runs[0].stats.stall_attribution,
                runs[1].stats.stall_attribution,
                runs[0].machine,
                runs[1].machine,
            )
        )
    if args.json:
        write_stats_json(
            args.json, stats_document(args.benchmark, [r.run_payload() for r in runs])
        )
        log.info("wrote %s", args.json)
    if args.prom:
        write_prometheus(args.prom, runs[0].metrics.registry)
        log.info("wrote %s", args.prom)
    _report_cache_stats(cache)


def _report_cache_stats(cache) -> None:
    if cache is not None:
        log.info("%s", cache.stats.format())


def _add_perf_flags(
    parser: argparse.ArgumentParser, cache_flags: bool = True
) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the sweep (1 = serial, 0 = one per CPU "
        "core); results are bit-identical to the serial run",
    )
    parser.add_argument(
        "--executor",
        choices=["pool", "supervised", "distributed"],
        default="pool",
        help="sweep fan-out engine: 'pool' trusts its workers; "
        "'supervised' adds per-task deadlines, dead/wedged-worker "
        "detection, and bounded re-dispatch; 'distributed' coordinates "
        "'repro worker serve' daemons over TCP with host-loss tolerance "
        "(all bit-identical to serial)",
    )
    parser.add_argument(
        "--dist-bind",
        default="127.0.0.1",
        metavar="HOST",
        help="distributed executor: interface to listen on for workers "
        "(use 0.0.0.0 to accept workers from other machines)",
    )
    parser.add_argument(
        "--dist-port",
        type=int,
        default=0,
        metavar="P",
        help="distributed executor: TCP port to listen on for workers "
        "(0 = OS-assigned; the chosen port is logged at startup)",
    )
    parser.add_argument(
        "--dist-min-hosts",
        type=int,
        default=1,
        metavar="N",
        help="distributed executor: hosts to wait for before dispatching",
    )
    parser.add_argument(
        "--dist-wait",
        type=float,
        default=10.0,
        metavar="S",
        help="distributed executor: seconds to wait for --dist-min-hosts "
        "before degrading to local execution",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="S",
        help="supervised executor's per-task deadline in seconds "
        "(default: derived from --trace-length)",
    )
    parser.add_argument(
        "--redispatch-budget",
        type=int,
        default=2,
        metavar="N",
        help="re-dispatches allowed per task after a lost worker before "
        "the supervised executor degrades the sweep to serial",
    )
    parser.add_argument(
        "--engine",
        choices=["reference", "batched"],
        default=None,
        help="simulation kernel: 'reference' is the straight-line event "
        "model, 'batched' the fused hot-loop kernel (bit-identical "
        "stats, several times faster); default: the config's choice",
    )
    if cache_flags:
        parser.add_argument(
            "--cache",
            action="store_true",
            help="cache compile/trace artifacts on disk "
            "($REPRO_CACHE_DIR or ~/.cache/repro)",
        )
        parser.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="artifact cache directory (implies --cache)",
        )


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="attempts per evaluation run before a row degrades "
        "(1 = no retries); backoff is seeded and deterministic",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="run directory with the append-only journal: completed rows "
        "are reused (bit-identically) and new rows journaled; pass the "
        "same DIR again after an interrupt to resume",
    )
    parser.add_argument(
        "--shard",
        default=None,
        metavar="NAME",
        help="journal into journal-NAME.jsonl inside the --resume "
        "directory (one shard per executor/host); fold shards together "
        "later with 'repro journal merge'",
    )


def _add_span_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spans",
        action="store_true",
        help="emit orchestration spans (sweep/task/compile/tracegen/"
        "simulate + executor dispatch) as spans.jsonl next to the "
        "journal; deterministic spans are bit-identical across serial, "
        "--jobs, --resume, and distributed runs",
    )
    parser.add_argument(
        "--spans-dir",
        default=None,
        metavar="DIR",
        help="span sink directory (implies --spans; default: the "
        "--resume directory, else the current directory)",
    )


def _add_robustness_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="enable the simulator's per-cycle invariant checker "
        "(observational; cycle counts are unchanged)",
    )
    parser.add_argument(
        "--cycle-budget",
        type=int,
        default=0,
        metavar="N",
        help="watchdog cycle budget per simulation (0 = derived default)",
    )


def _add_logging_flags(parser: argparse.ArgumentParser, suppress: bool = False) -> None:
    """``-v``/``--quiet`` on the root parser and (suppressed-default)
    every subparser, so the flags work on either side of the command."""
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=argparse.SUPPRESS if suppress else 0,
        help="debug-level diagnostics on stderr (logger-name prefixed)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        default=argparse.SUPPRESS if suppress else False,
        help="silence diagnostics below errors (results still print)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multicluster Architecture reproduction (MICRO-30 1997)",
    )
    _add_logging_flags(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    t2 = sub.add_parser("table2", help="regenerate Table 2")
    t2.add_argument("--trace-length", type=int, default=120_000)
    t2.add_argument("--benchmarks", nargs="*", default=None)
    t2.add_argument("--detailed", action="store_true", default=True)
    _add_robustness_flags(t2)
    _add_perf_flags(t2)
    _add_resilience_flags(t2)
    _add_span_flags(t2)
    t2.set_defaults(func=_cmd_table2)

    sc = sub.add_parser("scenarios", help="Figures 2-5 execution timelines")
    sc.set_defaults(func=_cmd_scenarios)

    f6 = sub.add_parser("figure6", help="the Figure 6 worked example")
    f6.add_argument(
        "--sweep",
        action="store_true",
        help="run the walk-through across imbalance thresholds",
    )
    f6.add_argument("--jobs", type=int, default=1, metavar="N")
    f6.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="journal directory for the threshold sweep (see table2)",
    )
    f6.set_defaults(func=_cmd_figure6)

    ct = sub.add_parser("cycle-time", help="the Section 4.2/5 analysis")
    ct.add_argument("--trace-length", type=int, default=40_000)
    ct.add_argument("--benchmarks", nargs="*", default=None)
    _add_robustness_flags(ct)
    _add_perf_flags(ct)
    ct.set_defaults(func=_cmd_cycle_time)

    ab = sub.add_parser("ablations", help="design-choice sweeps")
    ab.add_argument("--benchmark", default="compress")
    ab.add_argument("--trace-length", type=int, default=20_000)
    ab.add_argument(
        "--sweeps",
        nargs="*",
        choices=[
            "threshold", "buffers", "partitioner", "assignment",
            "unroll", "globals", "queue", "scope",
        ],
        default=None,
    )
    _add_perf_flags(ab, cache_flags=False)
    _add_resilience_flags(ab)
    ab.set_defaults(func=_cmd_ablations)

    ex = sub.add_parser(
        "explore",
        help="design-space exploration gym: search N-cluster machines "
        "for the cycle-count vs cycle-time Pareto frontier",
    )
    ex.add_argument(
        "--driver",
        choices=["random", "grid", "evolutionary", "halving"],
        default="random",
        help="search strategy (all seeded and byte-reproducible)",
    )
    ex.add_argument("--seed", type=int, default=42, metavar="N")
    ex.add_argument(
        "--budget",
        type=int,
        default=16,
        metavar="N",
        help="random driver: total samples; halving: initial population",
    )
    ex.add_argument(
        "--population",
        type=int,
        default=8,
        metavar="N",
        help="evolutionary driver: points per generation",
    )
    ex.add_argument("--generations", type=int, default=4, metavar="N")
    ex.add_argument(
        "--elite",
        type=int,
        default=2,
        metavar="N",
        help="evolutionary driver: parents copied unchanged per generation",
    )
    ex.add_argument(
        "--tournament",
        type=int,
        default=3,
        metavar="N",
        help="evolutionary driver: tournament size for parent selection",
    )
    ex.add_argument(
        "--mutation-rate",
        type=float,
        default=0.5,
        metavar="P",
        help="evolutionary driver: offspring mutation probability",
    )
    ex.add_argument(
        "--eta",
        type=int,
        default=3,
        metavar="N",
        help="halving driver: promotion factor (top 1/eta survive a rung)",
    )
    ex.add_argument(
        "--max-clusters",
        type=int,
        default=4,
        metavar="N",
        help="upper bound on clusters per sampled machine",
    )
    ex.add_argument("--benchmarks", nargs="*", default=None)
    ex.add_argument(
        "--trace-length",
        type=int,
        default=12_000,
        metavar="N",
        help="instructions simulated per workload per trial (searches "
        "rank points; they do not publish tables)",
    )
    ex.add_argument("--trace-seed", type=int, default=7, metavar="N")
    ex.add_argument(
        "--tech",
        choices=["0.8um", "0.35um", "0.18um"],
        default="0.35um",
        help="process generation for the Palacharla cycle-time model",
    )
    ex.add_argument(
        "--part",
        choices=["dual_none", "dual_local"],
        default="dual_none",
        help="'dual_none' simulates the shared native binary on every "
        "point; 'dual_local' reschedules per point with the N-cluster "
        "local scheduler",
    )
    ex.add_argument(
        "--trajectory",
        default=None,
        metavar="FILE",
        help="write the per-trial search trajectory as JSONL (no "
        "timestamps: reruns and resumed runs are byte-identical)",
    )
    ex.add_argument(
        "--frontier",
        default=None,
        metavar="FILE",
        help="write the Pareto frontier as canonical JSON",
    )
    _add_robustness_flags(ex)
    _add_perf_flags(ex)
    _add_resilience_flags(ex)
    _add_span_flags(ex)
    ex.set_defaults(func=_cmd_explore)

    rp = sub.add_parser("report", help="regenerate everything into REPORT.md")
    rp.add_argument("--trace-length", type=int, default=40_000)
    rp.add_argument("--output", default="REPORT.md")
    rp.set_defaults(func=_cmd_report)

    ra = sub.add_parser(
        "reassignment", help="dynamic register reassignment demo (Section 6)"
    )
    ra.add_argument("--phase-length", type=int, default=2000)
    _add_perf_flags(ra, cache_flags=False)
    ra.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="journal directory for the three machine runs (see table2)",
    )
    ra.set_defaults(func=_cmd_reassignment)

    be = sub.add_parser(
        "bench",
        help="time Table 2 serial vs parallel vs cached; write BENCH_table2.json",
    )
    be.add_argument(
        "--quick",
        action="store_true",
        help="CI preset: short traces (trace_length defaults to 2000)",
    )
    be.add_argument("--trace-length", type=int, default=None)
    be.add_argument("--benchmarks", nargs="*", default=None)
    be.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="workers for the parallel sweep (0 = one per core, min 2)",
    )
    be.add_argument("--output", default="BENCH_table2.json")
    be.add_argument("--cache-dir", default=None, metavar="DIR")
    be.add_argument(
        "--min-engine-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail if the batched kernel's simulation-only speedup over "
        "the reference kernel drops below X (default: the committed "
        "floor; 0 disables the gate)",
    )
    be.set_defaults(func=_cmd_bench)

    rep = sub.add_parser(
        "replay",
        help="re-run a failure bundle and check it reproduces "
        "(exit 0 = same typed error, 1 = different behaviour)",
    )
    rep.add_argument("bundle", help="path to a bundles/*.json replay bundle")
    rep.set_defaults(func=_cmd_replay)

    ch = sub.add_parser(
        "chaos",
        help="seeded fault-injection soak over the sweep orchestration "
        "(exit 0 = healthy, 5 = contract violations)",
    )
    ch.add_argument("--seed", type=int, default=0)
    ch.add_argument("--rounds", type=int, default=3)
    ch.add_argument("--benchmarks", nargs="*", default=None)
    ch.add_argument("--trace-length", type=int, default=1000)
    ch.add_argument("--jobs", type=int, default=1, metavar="N")
    ch.add_argument(
        "--quick",
        action="store_true",
        help="CI preset: 2 rounds, one benchmark, short traces",
    )
    ch.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="keep journals, bundles, and health.json here for post-mortems",
    )
    ch.add_argument(
        "--worker-faults",
        action="store_true",
        help="inject executor-level faults instead (worker_kill, "
        "worker_stall, worker_partition) against the supervised "
        "executor, asserting bit-identity to a serial reference",
    )
    ch.add_argument(
        "--host-faults",
        action="store_true",
        help="inject host-level faults instead (host_kill, host_stall, "
        "host_partition) against the distributed executor: each round "
        "launches real localhost worker subprocesses, sabotages them, "
        "and asserts bit-identity plus clean shard merges",
    )
    ch.add_argument(
        "--hosts",
        type=int,
        default=2,
        metavar="N",
        help="worker subprocesses per --host-faults round (>= 2)",
    )
    ch.set_defaults(func=_cmd_chaos)

    wk = sub.add_parser(
        "worker", help="distributed sweep worker daemon (one per host)"
    )
    wk_sub = wk.add_subparsers(dest="worker_command", required=True)
    ws = wk_sub.add_parser(
        "serve",
        help="connect to a coordinator and execute leased sweep tasks "
        "until it says shutdown (or vanishes)",
    )
    ws.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="the coordinator's listen address (the sweep side prints it; "
        "see --executor distributed / --dist-port)",
    )
    ws.add_argument(
        "--host",
        default=None,
        metavar="NAME",
        help="host identity for leases, metrics labels, and the journal "
        "shard name (default: hostname-pid)",
    )
    ws.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="journal completed rows into journal-<host>.jsonl here "
        "(durable on this host before each result is sent); fold shards "
        "with 'repro journal merge'",
    )
    ws.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="artifact cache directory for this worker")
    ws.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help="JSON FaultPlan of host faults to self-inject at task "
        "pickup (chaos/CI only)",
    )
    ws.add_argument(
        "--connect-retries",
        type=int,
        default=None,
        metavar="N",
        help="attempts to reach the coordinator before giving up "
        "(0.25s apart; default 40)",
    )
    ws.set_defaults(func=_cmd_worker_serve)

    jn = sub.add_parser(
        "journal", help="operate on run-directory journals (sharded sweeps)"
    )
    jn_sub = jn.add_subparsers(dest="journal_command", required=True)
    jm = jn_sub.add_parser(
        "merge",
        help="fold shard journals into one resume-equivalent run directory",
    )
    jm.add_argument(
        "shards",
        nargs="+",
        metavar="SHARD",
        help="journal files or run directories to merge (a directory "
        "contributes journal.jsonl plus every journal-*.jsonl)",
    )
    jm.add_argument(
        "--output",
        required=True,
        metavar="DIR",
        help="output run directory (must not already hold a journal); "
        "point --resume here afterwards",
    )
    jm.add_argument(
        "--dry-run",
        action="store_true",
        help="report what the merge would do (rows, conflicts, missing "
        "artifacts) without writing anything",
    )
    jm.set_defaults(func=_cmd_journal_merge)

    sp = sub.add_parser(
        "spans",
        help="analyze and export orchestration spans from a run directory",
    )
    sp_sub = sp.add_subparsers(dest="spans_command", required=True)
    ss = sp_sub.add_parser(
        "summarize",
        help="per-kind totals and the virtual-timeline critical path",
    )
    ss.add_argument(
        "run_dir",
        metavar="RUN_DIR",
        help="run directory holding spans.jsonl / spans-*.jsonl",
    )
    ss.add_argument(
        "--json",
        action="store_true",
        help="emit the summary as JSON instead of the human table",
    )
    ss.set_defaults(func=_cmd_spans_summarize)
    se = sp_sub.add_parser(
        "export",
        help="export spans as Chrome trace-event JSON (load in Perfetto "
        "or chrome://tracing)",
    )
    se.add_argument("run_dir", metavar="RUN_DIR")
    se.add_argument(
        "--format",
        choices=["chrome"],
        default="chrome",
        help="export format (trace-event JSON)",
    )
    se.add_argument(
        "--output",
        required=True,
        metavar="FILE",
        help="output file (open with https://ui.perfetto.dev)",
    )
    se.set_defaults(func=_cmd_spans_export)

    tp = sub.add_parser(
        "top",
        help="live terminal view of a sweep's run directory: per-shard "
        "progress, host leases, cache health, degradation events",
    )
    tp.add_argument("run_dir", metavar="RUN_DIR")
    tp.add_argument(
        "--once",
        action="store_true",
        help="render one snapshot and exit (scripts/CI)",
    )
    tp.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="seconds between refreshes",
    )
    tp.set_defaults(func=_cmd_top)

    tr = sub.add_parser(
        "trace",
        help="pipeline chart of one benchmark window (flight recorder)",
    )
    tr.add_argument("benchmark")
    tr.add_argument(
        "--machine",
        choices=["single", "dual", "dual-local"],
        default="dual",
        help="which Section 4 machine/binary to observe",
    )
    tr.add_argument("--trace-length", type=int, default=2000)
    tr.add_argument(
        "--window",
        type=int,
        nargs=2,
        default=(0, 24),
        metavar=("FIRST", "LAST"),
        help="dynamic-instruction sequence window to chart",
    )
    tr.add_argument("--max-width", type=int, default=64, metavar="COLS")
    tr.add_argument(
        "--jsonl",
        default=None,
        metavar="FILE",
        help="additionally stream every pipeline event to FILE (JSONL)",
    )
    tr.add_argument("--cache-dir", default=None, metavar="DIR")
    tr.add_argument(
        "--engine",
        choices=["reference", "batched"],
        default=None,
        help="simulation kernel (bit-identical stats; see 'bench')",
    )
    tr.set_defaults(func=_cmd_trace)

    st = sub.add_parser(
        "stats",
        help="observed run: stats summary, stall attribution, metrics export",
    )
    st.add_argument("benchmark")
    st.add_argument(
        "--machine",
        choices=["single", "dual", "dual-local", "both"],
        default="both",
        help="machine to observe ('both' = single + dual, with a diff)",
    )
    st.add_argument("--trace-length", type=int, default=20_000)
    st.add_argument(
        "--interval",
        type=int,
        default=100,
        metavar="N",
        help="metrics sampling interval in cycles",
    )
    st.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the schema-validated repro-stats JSON document to FILE",
    )
    st.add_argument(
        "--prom",
        default=None,
        metavar="FILE",
        help="write Prometheus text-format metrics to FILE "
        "(single machine only)",
    )
    st.add_argument("--cache-dir", default=None, metavar="DIR")
    st.add_argument(
        "--engine",
        choices=["reference", "batched"],
        default=None,
        help="simulation kernel (bit-identical stats; see 'bench')",
    )

    st.set_defaults(func=_cmd_stats)

    # -v/--quiet on every (nested) subcommand so the flags work on
    # either side of the command words.
    for command_parser in set(sub.choices.values()) | {jm, ws, ss, se}:
        _add_logging_flags(command_parser, suppress=True)
    return parser


def _cmd_reassignment(args: argparse.Namespace) -> None:
    from repro.experiments.reassignment import (
        format_reassignment_result,
        run_reassignment_demo,
    )

    journal = _make_journal(args)
    try:
        result = run_reassignment_demo(
            args.phase_length, jobs=getattr(args, "jobs", 1), journal=journal
        )
    finally:
        if journal is not None:
            journal.close()
    print(format_reassignment_result(result))


def _cmd_replay(args: argparse.Namespace) -> None:
    from repro.robustness.replay import replay_file

    result = replay_file(args.bundle)
    print(result.format())
    if not result.reproduced:
        raise SystemExit(1)


def _cmd_chaos(args: argparse.Namespace) -> None:
    from repro.robustness.chaos import ChaosConfig, run_chaos

    if args.quick:
        config = ChaosConfig(
            seed=args.seed,
            rounds=min(args.rounds, 2),
            benchmarks=("compress",),
            trace_length=800,
            jobs=args.jobs,
            worker_faults=args.worker_faults,
            host_faults=args.host_faults,
            hosts=args.hosts,
        )
    else:
        config = ChaosConfig(
            seed=args.seed,
            rounds=args.rounds,
            benchmarks=tuple(args.benchmarks or ("compress", "ora")),
            trace_length=args.trace_length,
            jobs=args.jobs,
            worker_faults=args.worker_faults,
            host_faults=args.host_faults,
            hosts=args.hosts,
        )
    report = run_chaos(config, run_dir=args.run_dir)
    print(report.format())
    if args.run_dir:
        log.info("health report: %s/health.json", args.run_dir)
    raise SystemExit(report.exit_code)


def _cmd_spans_summarize(args: argparse.Namespace) -> None:
    import json

    from repro.errors import ConfigError
    from repro.obs.spans import (
        critical_path,
        format_span_summary,
        load_run_spans,
        split_spans,
        summarize_spans,
    )

    spans = load_run_spans(args.run_dir)
    if not spans:
        raise ConfigError(
            f"no span files in {args.run_dir!r}; run a sweep with --spans",
            run_dir=str(args.run_dir),
        )
    if args.json:
        det, wall = split_spans(spans)
        print(
            json.dumps(
                {
                    "deterministic": len(det),
                    "wall": len(wall),
                    "kinds": summarize_spans(det),
                    "critical_path": critical_path(det),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(format_span_summary(spans))


def _cmd_spans_export(args: argparse.Namespace) -> None:
    import json

    from repro.errors import ConfigError
    from repro.obs.spans import chrome_trace, load_run_spans, validate_chrome_trace

    spans = load_run_spans(args.run_dir)
    if not spans:
        raise ConfigError(
            f"no span files in {args.run_dir!r}; run a sweep with --spans",
            run_dir=str(args.run_dir),
        )
    document = chrome_trace(spans)
    validate_chrome_trace(document)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.write("\n")
    print(
        f"wrote {args.output} ({len(document['traceEvents'])} events from "
        f"{len(spans)} spans; open with https://ui.perfetto.dev)"
    )


def _cmd_top(args: argparse.Namespace) -> None:
    from repro.obs.top import run_top

    run_top(args.run_dir, once=args.once, interval_s=args.interval)


def _cmd_journal_merge(args: argparse.Namespace) -> None:
    from repro.robustness.journal import merge_journals

    report = merge_journals(args.shards, args.output, dry_run=args.dry_run)
    print(report.format())
    if args.dry_run:
        print("dry run: nothing written")


def _cmd_worker_serve(args: argparse.Namespace) -> None:
    from repro.dist.worker import DEFAULT_CONNECT_RETRIES, serve_worker

    retries = args.connect_retries
    report = serve_worker(
        args.connect,
        host=args.host,
        run_dir=args.run_dir,
        cache_dir=args.cache_dir,
        fault_plan_file=args.fault_plan,
        connect_retries=DEFAULT_CONNECT_RETRIES if retries is None else retries,
    )
    print(report.format())


def _cmd_bench(args: argparse.Namespace) -> None:
    from repro.perf.bench import run_bench

    report = run_bench(
        benchmarks=args.benchmarks or None,
        trace_length=args.trace_length,
        quick=args.quick,
        jobs=args.jobs,
        output=args.output,
        cache_dir=args.cache_dir,
        min_engine_speedup=args.min_engine_speedup,
    )
    print(report.format())
    print(f"wrote {args.output}")


def _cmd_report(args: argparse.Namespace) -> None:
    from repro.experiments.report import write_report

    report = write_report(args.output, trace_length=args.trace_length)
    print(f"wrote {args.output} ({len(report.markdown)} bytes)")
    print(f"figure 6 matches paper: {report.figure6.matches_paper}")


def main(argv: Optional[Sequence[str]] = None) -> None:
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    setup_logging(
        getattr(args, "verbose", 0) or 0, quiet=getattr(args, "quiet", False)
    )
    try:
        args.func(args)
    except ReproError as error:
        # One-line diagnostic instead of a traceback; the exit code
        # distinguishes configuration (2) from simulation (3) failures.
        print(f"error: {error.brief()}", file=sys.stderr)
        raise SystemExit(error.exit_code) from None


if __name__ == "__main__":  # pragma: no cover
    main()
