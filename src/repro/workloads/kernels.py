"""Hand-written kernels: classic codes expressed directly in the IL.

Where :mod:`repro.workloads.generator` produces statistically-shaped
programs, these kernels are written instruction by instruction, the way a
compiler front end would emit them.  They serve as documentation of the IR
API, as fixtures with exactly known structure, and as additional
evaluation points beyond the six SPEC92 stand-ins.

* :func:`build_daxpy` — the BLAS-1 vector update ``y[i] += a * x[i]``
  (peak-ILP streaming FP; the shape that punishes narrow clusters).
* :func:`build_dot_product` — a reduction with a loop-carried FP chain
  (the shape that forgives them).
* :func:`build_string_hash` — a byte-wise multiplicative hash (serial
  integer chain with a data-dependent early exit).
* :func:`build_list_walk` — pointer chasing (load-to-load chains; memory
  latency bound, indifferent to clustering).
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.isa.opcodes import Opcode
from repro.workloads.address_streams import HotColdStream, StridedStream
from repro.workloads.branch_models import BernoulliBranch, LoopBranch
from repro.workloads.generator import Workload, WorkloadSpec


def _workload(name: str, program, streams, behaviors) -> Workload:
    return Workload(WorkloadSpec(name=name), program, streams, behaviors)


def build_daxpy(vector_length: int = 512, unroll: int = 4) -> Workload:
    """``y[i] += a * x[i]`` with ``unroll`` independent lanes per iteration."""
    b = ProgramBuilder("daxpy")
    gp = b.global_pointer_value()
    b.block("init", count=1)
    x = b.load("xbase", gp)
    y = b.load("ybase", gp)
    a = b.fp_value("a")
    b.op(Opcode.CVTQT, a, "xbase")
    n = b.op(Opcode.LDA, "n", imm=vector_length // unroll)

    b.block("body", count=vector_length // unroll)
    for lane in range(unroll):
        xi = b.load(f"x{lane}", x, imm=8 * lane, stream="x", opcode=Opcode.LDT)
        yi = b.load(f"y{lane}", y, imm=8 * lane, stream="y", opcode=Opcode.LDT)
        axi = b.op(Opcode.MULT, f"ax{lane}", a, xi)
        yo = b.op(Opcode.ADDT, f"yo{lane}", yi, axi)
        b.store(yo, y, imm=8 * lane, stream="y", opcode=Opcode.STT)
    b.op(Opcode.S8ADDQ, x, x, "n")
    b.op(Opcode.S8ADDQ, y, y, "n")
    b.op(Opcode.SUBQ, n, n, n)  # dependence only; trip count is the model's
    b.branch(Opcode.BNE, n, "body", model="trip")
    b.block("exit", count=1)
    b.ret()
    prog = b.build()
    prog.cfg.block("body").set_successors(
        ["body", "exit"], [1 - unroll / vector_length, unroll / vector_length]
    )
    streams = {
        "x": StridedStream(0x100000, 8, 8 * vector_length),
        "y": StridedStream(0x200000, 8, 8 * vector_length),
    }
    return _workload("daxpy", prog, streams, {"trip": LoopBranch(vector_length // unroll)})


def build_dot_product(vector_length: int = 512) -> Workload:
    """``s += x[i] * y[i]``: the FP accumulate serializes iterations."""
    b = ProgramBuilder("dot")
    gp = b.global_pointer_value()
    b.block("init", count=1)
    x = b.load("xbase", gp)
    y = b.load("ybase", gp)
    s = b.fp_value("s")
    b.op(Opcode.CVTQT, s, "xbase")
    n = b.op(Opcode.LDA, "n", imm=vector_length)

    b.block("body", count=vector_length)
    xi = b.load("xi", x, stream="x", opcode=Opcode.LDT)
    yi = b.load("yi", y, stream="y", opcode=Opcode.LDT)
    p = b.op(Opcode.MULT, "p", xi, yi)
    b.op(Opcode.ADDT, s, s, p)          # loop-carried chain
    b.op(Opcode.SUBQ, n, n, n)
    b.branch(Opcode.BNE, n, "body", model="trip")
    b.block("exit", count=1)
    sp = b.stack_pointer_value()
    b.store(s, sp, opcode=Opcode.STT)
    b.ret()
    prog = b.build()
    prog.cfg.block("body").set_successors(
        ["body", "exit"], [1 - 1 / vector_length, 1 / vector_length]
    )
    streams = {
        "x": StridedStream(0x100000, 8, 8 * vector_length),
        "y": StridedStream(0x200000, 8, 8 * vector_length),
    }
    return _workload("dot", prog, streams, {"trip": LoopBranch(vector_length)})


def build_string_hash(block_chars: int = 64) -> Workload:
    """Byte-wise ``h = h * 31 + c`` with a terminator check each byte."""
    b = ProgramBuilder("strhash")
    gp = b.global_pointer_value()
    b.block("init", count=1)
    sbase = b.load("sbase", gp)
    h = b.op(Opcode.LDA, "h", imm=5381)
    thirty_one = b.op(Opcode.LDA, "c31", imm=31)

    b.block("body", count=block_chars)
    c = b.load("c", sbase, stream="text")
    hm = b.op(Opcode.MULQ, "hm", h, thirty_one)
    b.op(Opcode.ADDQ, h, hm, c)
    b.op(Opcode.ADDQ, sbase, sbase, thirty_one)
    b.branch(Opcode.BNE, c, "body", model="terminator")
    b.block("exit", count=1)
    sp = b.stack_pointer_value()
    b.store(h, sp)
    b.ret()
    prog = b.build()
    prog.cfg.block("body").set_successors(
        ["body", "exit"], [1 - 1 / block_chars, 1 / block_chars]
    )
    streams = {"text": StridedStream(0x300000, 8, 1 << 16)}
    return _workload(
        "strhash", prog, streams, {"terminator": LoopBranch(block_chars)}
    )


def build_list_walk(nodes: int = 10_000, hot_fraction: float = 0.3) -> Workload:
    """Pointer chasing: each load's address models the next node."""
    b = ProgramBuilder("listwalk")
    gp = b.global_pointer_value()
    b.block("init", count=1)
    node = b.load("node", gp)
    acc = b.op(Opcode.LDA, "acc", imm=0)

    b.block("body", count=nodes)
    value = b.load("value", node, imm=8, stream="heap")
    nxt = b.load("next", node, stream="heap")
    b.op(Opcode.ADDQ, acc, acc, value)
    b.op(Opcode.BIS, node, nxt)
    b.branch(Opcode.BNE, nxt, "body", model="end")
    b.block("exit", count=1)
    sp = b.stack_pointer_value()
    b.store(acc, sp)
    b.ret()
    prog = b.build()
    prog.cfg.block("body").set_successors(
        ["body", "exit"], [1 - 1 / nodes, 1 / nodes]
    )
    streams = {
        "heap": HotColdStream(
            0x400000, hot_size=1 << 14, cold_size=16 * nodes, hot_fraction=hot_fraction
        )
    }
    return _workload(
        "listwalk",
        prog,
        streams,
        {"end": LoopBranch(256), "unused": BernoulliBranch(0.5)},
    )


#: Kernel registry, mirroring SPEC92's shape.
KERNELS = {
    "daxpy": build_daxpy,
    "dot": build_dot_product,
    "strhash": build_string_hash,
    "listwalk": build_list_walk,
}
