"""Synthetic SPEC92-like program generation.

The paper evaluated six SPEC92 benchmarks compiled for the Alpha.  We
cannot ship those binaries, so this module generates IL programs whose
*simulation-relevant* structure is controlled: instruction mix, basic-block
geometry, dependence-chain depth (ILP), loop nesting and trip counts,
branch predictability, register pressure, and memory locality.  Each
benchmark profile in :mod:`repro.workloads.spec92` is one parameterization.

A generated :class:`Workload` bundles the IL program with the address
streams and branch behaviours the trace generator needs; the annotations
are carried by name through compilation, so the same workload drives the
native and rescheduled binaries identically (as in the paper, where the
same application was traced under both schedulers).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode
from repro.isa.registers import RegisterClass
from repro.ir.builder import ProgramBuilder
from repro.ir.program import ILProgram
from repro.ir.values import ILValue
from repro.workloads.address_streams import (
    AddressStream,
    HotColdStream,
    RandomStream,
    StackStream,
    StridedStream,
)
from repro.workloads.branch_models import (
    BernoulliBranch,
    BranchBehavior,
    LoopBranch,
    MarkovBranch,
    PatternBranch,
)

_INT_ALU_OPS = (
    Opcode.ADDQ,
    Opcode.SUBQ,
    Opcode.AND,
    Opcode.XOR,
    Opcode.SLL,
    Opcode.SRL,
    Opcode.CMPEQ,
    Opcode.CMPLT,
    Opcode.S4ADDQ,
)
_FP_ALU_OPS = (Opcode.ADDT, Opcode.SUBT, Opcode.MULT, Opcode.CMPTLT, Opcode.CVTQT)


@dataclass
class ArraySpec:
    """One memory region a workload touches.

    Attributes:
        name: stream name (referenced by generated loads/stores).
        kind: ``"strided"``, ``"random"``, ``"hotcold"``, or ``"stack"``.
        size: region size in bytes (drives cache behaviour).
        stride: byte stride for strided streams.
        fp: whether loads from this array produce floating-point values.
        hot_fraction: for ``hotcold``, probability of the hot region.
    """

    name: str
    kind: str = "strided"
    size: int = 1 << 20
    stride: int = 8
    fp: bool = False
    hot_fraction: float = 0.9

    def build_stream(self, base: int) -> AddressStream:
        if self.kind == "strided":
            return StridedStream(base, self.stride, self.size)
        if self.kind == "random":
            return RandomStream(base, self.size)
        if self.kind == "hotcold":
            return HotColdStream(
                base, hot_size=4096, cold_size=self.size, hot_fraction=self.hot_fraction
            )
        if self.kind == "stack":
            return StackStream(base, frame_size=self.size)
        raise ValueError(f"unknown array kind: {self.kind}")


@dataclass
class LoopSpec:
    """One loop nest of the generated program.

    Attributes:
        body_blocks: number of straight-line blocks in the body.
        block_size: mean static instructions per block.
        trip_count: iterations per entry (back-edge behaviour).
        trip_jitter: +/- variation of successive trip counts.
        diamond_prob: probability a body block opens an if/else diamond
            whose branch follows ``diamond_model``.
        arrays: names of the arrays this loop touches.
    """

    body_blocks: int = 2
    block_size: int = 8
    trip_count: int = 50
    trip_jitter: int = 0
    diamond_prob: float = 0.0
    diamond_model: str = "bernoulli"
    diamond_taken_prob: float = 0.5
    arrays: tuple[str, ...] = ()


@dataclass
class WorkloadSpec:
    """Full parameterization of a synthetic benchmark."""

    name: str
    seed: int = 1
    #: Fractions over {int_alu, int_mul, fp_alu, fp_div, load, store};
    #: conditional branches come from the loop structure, not the mix.
    mix: dict[str, float] = field(
        default_factory=lambda: {
            "int_alu": 0.45,
            "int_mul": 0.02,
            "fp_alu": 0.0,
            "fp_div": 0.0,
            "load": 0.35,
            "store": 0.18,
        }
    )
    loops: list[LoopSpec] = field(default_factory=list)
    arrays: list[ArraySpec] = field(default_factory=list)
    #: Probability an operand is the most recently defined value of its
    #: class (1.0 = one serial chain; 0.0 = maximal ILP).
    chain_bias: float = 0.4
    #: Number of recently-defined values eligible as operands (register
    #: pressure knob).
    live_window: int = 12
    #: Number of loop-carried accumulator values per loop (per register
    #: class that the mix uses).
    accumulators: int = 2
    #: Probability an ALU result is accumulated into a loop-carried value.
    #: This is the serialization knob: accumulations form true loop-carried
    #: recurrences (reductions, running products, coordinate updates), so
    #: higher values cap the ILP across iterations.
    accumulate_prob: float = 0.15
    #: Replicate the loop-nest section this many times with fresh blocks
    #: (code-footprint knob: gcc-like programs get many distinct nests).
    code_replicas: int = 1


@dataclass
class Workload:
    """A generated benchmark: program + trace-generation models."""

    spec: WorkloadSpec
    program: ILProgram
    streams: dict[str, AddressStream]
    behaviors: dict[str, BranchBehavior]

    @property
    def name(self) -> str:
        return self.spec.name


class _Generator:
    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.builder = ProgramBuilder(spec.name)
        self.streams: dict[str, AddressStream] = {}
        self.behaviors: dict[str, BranchBehavior] = {}
        self._block_counter = 0
        self._model_counter = 0
        self._live_int: list[ILValue] = []
        self._live_fp: list[ILValue] = []
        self._accumulators: list[ILValue] = []
        self._fp_accumulators: list[ILValue] = []
        self._bases: dict[str, ILValue] = {}

    # ------------------------------------------------------------- helpers
    def _label(self, prefix: str) -> str:
        self._block_counter += 1
        return f"{prefix}{self._block_counter}"

    def _model(self, behavior: BranchBehavior) -> str:
        self._model_counter += 1
        name = f"m{self._model_counter}"
        self.behaviors[name] = behavior
        return name

    def _push_live(self, value: ILValue) -> None:
        pool = self._live_fp if value.rclass is RegisterClass.FP else self._live_int
        pool.append(value)
        if len(pool) > self.spec.live_window:
            pool.pop(0)

    def _pick(self, pool: list[ILValue]) -> ILValue:
        if self.rng.random() < self.spec.chain_bias:
            return pool[-1]
        return self.rng.choice(pool)

    def _pick_int(self) -> ILValue:
        return self._pick(self._live_int)

    def _pick_fp(self) -> ILValue:
        if not self._live_fp:
            # Seed the FP pool with a conversion.
            from repro.ir.instructions import ILInstruction

            b = self.builder
            dest = b.program.new_value(None, RegisterClass.FP)
            b.current.add(ILInstruction(Opcode.CVTQT, dest=dest, srcs=(self._pick_int(),)))
            self._push_live(dest)
        return self._pick(self._live_fp)

    # ------------------------------------------------------------ pipeline
    def generate(self) -> Workload:
        spec = self.spec
        b = self.builder
        b.stack_pointer_value("SP")
        gp = b.global_pointer_value("GP")

        entry = b.block("entry")
        del entry
        base_address = 0x0100_0000
        for array in spec.arrays:
            stream = array.build_stream(base_address)
            self.streams[array.name] = stream
            base = b.value(f"base_{array.name}")
            # Bases are loaded through the global pointer, as compiled code
            # loads array addresses from the GOT.
            b.load(base, gp, stream=None, opcode=Opcode.LDQ)
            self._bases[array.name] = base
            base_address += max(array.size, 1 << 16) + (1 << 16)
        seed_a = b.op(Opcode.LDA, "seed0", imm=1)
        seed_b = b.op(Opcode.LDA, "seed1", imm=2)
        self._live_int.extend([seed_a, seed_b])

        loop_sections = []
        for replica in range(max(spec.code_replicas, 1)):
            for li, loop in enumerate(spec.loops):
                loop_sections.append((f"r{replica}L{li}", loop))

        for prefix, loop in loop_sections:
            self._emit_loop(prefix, loop)

        final = b.block(self._label("exit"))
        del final
        b.ret()
        program = b.build()
        return Workload(spec, program, self.streams, self.behaviors)

    def _emit_loop(self, prefix: str, loop: LoopSpec) -> None:
        b = self.builder
        spec = self.spec
        # Fresh accumulators per loop (loop-carried dependences).
        pre = b.block(self._label(f"{prefix}pre"))
        del pre
        self._accumulators = []
        self._fp_accumulators = []
        uses_fp = spec.mix.get("fp_alu", 0.0) + spec.mix.get("fp_div", 0.0) > 0
        for i in range(spec.accumulators):
            acc = b.op(Opcode.LDA, f"{prefix}acc{i}", imm=i)
            self._accumulators.append(acc)
            self._push_live(acc)
            if uses_fp:
                from repro.ir.instructions import ILInstruction

                facc = b.program.new_value(f"{prefix}facc{i}", RegisterClass.FP)
                b.current.add(ILInstruction(Opcode.CVTQT, dest=facc, srcs=(acc,)))
                self._fp_accumulators.append(facc)
                self._push_live(facc)

        head_label = self._label(f"{prefix}body")
        body_labels = [head_label] + [
            self._label(f"{prefix}body") for _ in range(loop.body_blocks - 1)
        ]
        exit_label = self._label(f"{prefix}post")

        for bi, label in enumerate(body_labels):
            block = b.block(label)
            del block
            self._emit_block_body(loop)
            is_last = bi == len(body_labels) - 1
            if is_last:
                cond = self._pick_int()
                model = self._model(LoopBranch(loop.trip_count, loop.trip_jitter))
                b.branch(Opcode.BNE, cond, head_label, model=model)
                b.current.set_successors(
                    [head_label, exit_label],
                    [1.0 - 1.0 / loop.trip_count, 1.0 / loop.trip_count],
                )
            elif loop.diamond_prob > 0 and self.rng.random() < loop.diamond_prob:
                self._emit_diamond(loop, body_labels[bi + 1])
        post = b.block(exit_label)
        del post
        # Drain: store the accumulators so the loop's work is observable
        # (prevents whole-loop dead-code elimination) — compiled code
        # writes reduction results back to memory the same way.
        sp = b.stack_pointer_value("SP")
        for acc in self._accumulators:
            b.store(acc, sp, stream=None)
            self._push_live(acc)
        for facc in self._fp_accumulators:
            b.store(facc, sp, stream=None, opcode=Opcode.STT)

    def _emit_diamond(self, loop: LoopSpec, join_label: str) -> None:
        """End the current block with a conditional skip of a small block."""
        b = self.builder
        then_label = self._label("then")
        cond = self._pick_int()
        if loop.diamond_model == "markov":
            behavior: BranchBehavior = MarkovBranch(loop.diamond_taken_prob)
        elif loop.diamond_model == "pattern":
            behavior = PatternBranch("TTNT")
        else:
            behavior = BernoulliBranch(loop.diamond_taken_prob)
        model = self._model(behavior)
        b.branch(Opcode.BEQ, cond, join_label, model=model)
        b.current.set_successors(
            [join_label, then_label],
            [loop.diamond_taken_prob, 1.0 - loop.diamond_taken_prob],
        )
        blk = b.block(then_label)
        del blk
        self._emit_block_body(loop, size_scale=0.5)

    def _emit_block_body(self, loop: LoopSpec, size_scale: float = 1.0) -> None:
        b = self.builder
        spec = self.spec
        rng = self.rng
        size = max(2, int(rng.gauss(loop.block_size * size_scale, loop.block_size / 3)))
        kinds, weights = zip(*spec.mix.items())
        for _ in range(size):
            kind = rng.choices(kinds, weights)[0]
            if kind == "load" and loop.arrays:
                array_name = rng.choice(loop.arrays)
                array = next(a for a in spec.arrays if a.name == array_name)
                base = self._bases[array_name]
                opcode = Opcode.LDT if array.fp else Opcode.LDQ
                rclass = RegisterClass.FP if array.fp else RegisterClass.INT
                dest = b.program.new_value(None, rclass)
                b.load(dest, base, imm=rng.randrange(0, 256, 8), stream=array_name, opcode=opcode)
                self._push_live(dest)
            elif kind == "store" and loop.arrays:
                array_name = rng.choice(loop.arrays)
                array = next(a for a in spec.arrays if a.name == array_name)
                base = self._bases[array_name]
                if array.fp and self._live_fp:
                    b.store(self._pick_fp(), base, stream=array_name, opcode=Opcode.STT)
                else:
                    b.store(self._pick_int(), base, stream=array_name, opcode=Opcode.STQ)
            elif kind == "int_mul":
                dest = b.program.new_value(None, RegisterClass.INT)
                from repro.ir.instructions import ILInstruction

                b.current.add(
                    ILInstruction(Opcode.MULQ, dest=dest, srcs=(self._pick_int(), self._pick_int()))
                )
                self._push_live(dest)
            elif kind == "fp_div":
                from repro.ir.instructions import ILInstruction

                dest = b.program.new_value(None, RegisterClass.FP)
                op = Opcode.DIVT if rng.random() < 0.5 else Opcode.DIVS
                b.current.add(
                    ILInstruction(op, dest=dest, srcs=(self._pick_fp(), self._pick_fp()))
                )
                self._push_live(dest)
            elif kind == "fp_alu":
                from repro.ir.instructions import ILInstruction

                if self._fp_accumulators and rng.random() < spec.accumulate_prob:
                    # Loop-carried FP recurrence (reduction / coordinate
                    # update): the iteration-serializing dependence.
                    acc = rng.choice(self._fp_accumulators)
                    op = rng.choice((Opcode.ADDT, Opcode.MULT, Opcode.SUBT))
                    b.current.add(
                        ILInstruction(op, dest=acc, srcs=(acc, self._pick_fp()))
                    )
                    continue
                dest = b.program.new_value(None, RegisterClass.FP)
                op = rng.choice(_FP_ALU_OPS)
                if op is Opcode.CVTQT:
                    srcs = (self._pick_int(),)
                else:
                    srcs = (self._pick_fp(), self._pick_fp())
                b.current.add(ILInstruction(op, dest=dest, srcs=srcs))
                self._push_live(dest)
            else:  # int_alu
                from repro.ir.instructions import ILInstruction

                if (
                    self._accumulators
                    and rng.random() < spec.accumulate_prob
                ):
                    acc = rng.choice(self._accumulators)
                    b.current.add(
                        ILInstruction(
                            Opcode.ADDQ, dest=acc, srcs=(acc, self._pick_int())
                        )
                    )
                else:
                    dest = b.program.new_value(None, RegisterClass.INT)
                    op = rng.choice(_INT_ALU_OPS)
                    b.current.add(
                        ILInstruction(op, dest=dest, srcs=(self._pick_int(), self._pick_int()))
                    )
                    self._push_live(dest)


def generate_workload(spec: WorkloadSpec) -> Workload:
    """Generate the workload described by ``spec`` (deterministic per seed)."""
    return _Generator(spec).generate()
