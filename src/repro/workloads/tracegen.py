"""Trace generation: walk a machine program and emit dynamic instructions.

This is the reproduction's stand-in for ATOM (Section 4): where the paper
instrumented the (re)scheduled Alpha binary and ran it, we walk the machine
program's control-flow graph with seeded stochastic models — loop trip
counts and branch behaviours decide the path, address streams supply
effective addresses — and emit the same per-instruction records the
simulator consumes.

Determinism: the same (program, streams, behaviours, seed) always produces
the same trace, so experiments and tests are exactly reproducible.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.ir.machine_program import MachineProgram
from repro.compiler.spill import SPILL_STREAM_PREFIX
from repro.workloads.address_streams import AddressStream, StackStream
from repro.workloads.branch_models import BranchBehavior
from repro.workloads.trace import DynamicInstruction

#: Base address of the synthetic stack region spill slots live in.
SPILL_BASE = 0x7FFF_0000
#: Base address used for unannotated memory instructions.
DEFAULT_STACK_BASE = 0x7FFE_0000


class TraceGenerator:
    """Generates dynamic traces from a machine program."""

    def __init__(
        self,
        machine: MachineProgram,
        streams: Optional[dict[str, AddressStream]] = None,
        behaviors: Optional[dict[str, BranchBehavior]] = None,
        seed: int = 0,
        loop_program: bool = True,
    ) -> None:
        """
        Args:
            machine: the compiled program.
            streams: address streams by ``mem_stream`` annotation name.
                ``__spill<N>`` streams are built in (stack slots); memory
                instructions with no annotation share a default stack
                stream.
            behaviors: branch behaviours by ``branch_model`` name;
                conditional branches without a model follow their block's
                edge probabilities as independent coin flips.
            seed: RNG seed.
            loop_program: restart from the entry block when the walk
                reaches a block with no successors, so any requested trace
                length can be generated from a finite program.
        """
        self.machine = machine
        self.streams = dict(streams or {})
        self.behaviors = dict(behaviors or {})
        self.seed = seed
        self.loop_program = loop_program
        self._default_stream = StackStream(DEFAULT_STACK_BASE)

    def generate(self, max_instructions: int) -> list[DynamicInstruction]:
        """Produce a trace of at most ``max_instructions`` records."""
        rng = random.Random(self.seed)
        for stream in self.streams.values():
            stream.reset()
        for behavior in self.behaviors.values():
            behavior.reset()

        trace: list[DynamicInstruction] = []
        label: Optional[str] = self.machine.entry_label
        seq = 0
        while label is not None and seq < max_instructions:
            block = self.machine.block(label)
            next_label: Optional[str] = None
            for instr, meta in zip(block.instructions, block.meta):
                if seq >= max_instructions:
                    return trace
                address = None
                taken = None
                opcode = instr.opcode
                if opcode.is_memory:
                    address = self._address_for(meta, rng)
                elif opcode.is_conditional_branch:
                    taken = self._direction_for(block, meta, rng)
                    next_label = (
                        block.succ_labels[0] if taken else self._fallthrough(block)
                    )
                elif opcode.is_control:
                    taken = True
                    if block.succ_labels:
                        next_label = block.succ_labels[0]
                trace.append(DynamicInstruction(instr, meta, seq, address, taken))
                seq += 1
            if next_label is None:
                if block.succ_labels:
                    next_label = self._choose_by_probability(block, rng)
                elif self.loop_program:
                    next_label = self.machine.entry_label
            label = next_label
        return trace

    # ----------------------------------------------------------- internals
    def _address_for(self, meta, rng: random.Random) -> int:
        name = meta.mem_stream
        if name is None:
            return self._default_stream.next_address(rng)
        if name.startswith(SPILL_STREAM_PREFIX):
            slot = int(name[len(SPILL_STREAM_PREFIX):] or 0)
            return SPILL_BASE + 8 * slot
        stream = self.streams.get(name)
        if stream is None:
            return self._default_stream.next_address(rng)
        return stream.next_address(rng)

    def _direction_for(self, block, meta, rng: random.Random) -> bool:
        model = self.behaviors.get(meta.branch_model) if meta.branch_model else None
        if model is not None:
            return model.next_taken(rng)
        taken_label = block.succ_labels[0] if block.succ_labels else None
        p_taken = block.edge_probs.get(taken_label, 0.5) if taken_label else 0.5
        return rng.random() < p_taken

    @staticmethod
    def _fallthrough(block) -> Optional[str]:
        if len(block.succ_labels) > 1:
            return block.succ_labels[1]
        return block.succ_labels[0] if block.succ_labels else None

    @staticmethod
    def _choose_by_probability(block, rng: random.Random) -> str:
        r = rng.random()
        cumulative = 0.0
        for label in block.succ_labels:
            cumulative += block.edge_probs.get(label, 0.0)
            if r < cumulative:
                return label
        return block.succ_labels[-1]
