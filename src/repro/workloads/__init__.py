"""Synthetic workloads, address streams, branch models, and trace generation."""

from repro.workloads.address_streams import (
    AddressStream,
    FixedStream,
    HotColdStream,
    RandomStream,
    StackStream,
    StridedStream,
)
from repro.workloads.branch_models import (
    BernoulliBranch,
    BranchBehavior,
    LoopBranch,
    MarkovBranch,
    PatternBranch,
)
from repro.workloads.generator import (
    ArraySpec,
    LoopSpec,
    Workload,
    WorkloadSpec,
    generate_workload,
)
from repro.workloads.kernels import (
    KERNELS,
    build_daxpy,
    build_dot_product,
    build_list_walk,
    build_string_hash,
)
from repro.workloads.spec92 import (
    DEFAULT_TRACE_LENGTH,
    PAPER_TABLE2,
    SPEC92,
    build_benchmark,
)
from repro.workloads.trace import DynamicInstruction
from repro.workloads.tracegen import SPILL_BASE, TraceGenerator

__all__ = [
    "AddressStream",
    "FixedStream",
    "HotColdStream",
    "RandomStream",
    "StackStream",
    "StridedStream",
    "BernoulliBranch",
    "BranchBehavior",
    "LoopBranch",
    "MarkovBranch",
    "PatternBranch",
    "ArraySpec",
    "LoopSpec",
    "Workload",
    "WorkloadSpec",
    "generate_workload",
    "KERNELS",
    "build_daxpy",
    "build_dot_product",
    "build_list_walk",
    "build_string_hash",
    "DEFAULT_TRACE_LENGTH",
    "PAPER_TABLE2",
    "SPEC92",
    "build_benchmark",
    "DynamicInstruction",
    "SPILL_BASE",
    "TraceGenerator",
]
