"""Dynamic branch-direction models.

Each conditional branch in a generated workload carries a
``branch_model`` annotation naming one of these behaviours; the trace
generator consults the model at every dynamic execution.  The menu spans
the predictability spectrum the SPEC92 suite covers: deterministic loop
trip counts (near-perfectly predictable by a combining predictor),
correlated patterns (the global component learns them), and data-dependent
Bernoulli coin flips (compress's hash hits).
"""

from __future__ import annotations

import abc
import random


class BranchBehavior(abc.ABC):
    """Decides the direction of one static conditional branch."""

    #: Constructor parameters that define the behaviour.  The artifact
    #: cache keys off these alone: a trace depends only on the model's
    #: configuration, never on its mutable state (``reset`` runs at the
    #: start of every generation).
    _token_fields: tuple[str, ...] = ()

    @abc.abstractmethod
    def next_taken(self, rng: random.Random) -> bool:
        """Direction of the next dynamic execution."""

    def reset(self) -> None:
        """Return to the initial state (new trace)."""

    @property
    def cache_token(self) -> str:
        """Deterministic identity for artifact-cache keys."""
        params = ",".join(f"{n}={getattr(self, n)}" for n in self._token_fields)
        return f"{type(self).__name__}({params})"


class BernoulliBranch(BranchBehavior):
    """Independent coin flip: taken with probability ``p_taken``."""

    _token_fields = ('p_taken',)

    def __init__(self, p_taken: float) -> None:
        self.p_taken = p_taken

    def next_taken(self, rng: random.Random) -> bool:
        return rng.random() < self.p_taken


class LoopBranch(BranchBehavior):
    """Loop back-edge: taken ``trip_count - 1`` times, then falls through.

    With a fixed trip count the pattern is perfectly periodic and the
    predictor converges to one misprediction per loop exit (or none, once
    the global history covers the period).  ``jitter`` adds +/- variation
    to successive trip counts.
    """

    _token_fields = ('trip_count', 'jitter',)

    def __init__(self, trip_count: int, jitter: int = 0) -> None:
        if trip_count < 1:
            raise ValueError("trip_count must be >= 1")
        self.trip_count = trip_count
        self.jitter = jitter
        self._remaining = -1

    def next_taken(self, rng: random.Random) -> bool:
        if self._remaining < 0:
            trips = self.trip_count
            if self.jitter:
                trips = max(1, trips + rng.randint(-self.jitter, self.jitter))
            self._remaining = trips - 1
        if self._remaining > 0:
            self._remaining -= 1
            return True
        self._remaining = -1
        return False

    def reset(self) -> None:
        self._remaining = -1


class PatternBranch(BranchBehavior):
    """A repeating direction pattern like ``"TTNT"`` (correlated branches)."""

    _token_fields = ('pattern',)

    def __init__(self, pattern: str) -> None:
        if not pattern or set(pattern) - {"T", "N"}:
            raise ValueError("pattern must be a non-empty string of T/N")
        self.pattern = pattern
        self._index = 0

    def next_taken(self, rng: random.Random) -> bool:
        taken = self.pattern[self._index] == "T"
        self._index = (self._index + 1) % len(self.pattern)
        return taken

    def reset(self) -> None:
        self._index = 0


class MarkovBranch(BranchBehavior):
    """Two-state Markov chain: repeats its last direction with
    probability ``p_repeat`` (bursty, partially predictable)."""

    _token_fields = ('p_repeat', 'start_taken',)

    def __init__(self, p_repeat: float = 0.8, start_taken: bool = True) -> None:
        self.p_repeat = p_repeat
        self.start_taken = start_taken
        self._last = start_taken

    def next_taken(self, rng: random.Random) -> bool:
        if rng.random() < self.p_repeat:
            taken = self._last
        else:
            taken = not self._last
        self._last = taken
        return taken

    def reset(self) -> None:
        self._last = self.start_taken
