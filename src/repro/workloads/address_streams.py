"""Synthetic effective-address streams.

The paper's traces carried the memory addresses of the SPEC92 runs.  Our
workloads attach a named address stream to each static load/store; the
trace generator draws an effective address from the stream at each dynamic
execution.  The stream shapes below cover the behaviours that matter to a
64 KB two-way data cache: sequential/strided array sweeps, scattered
hash-table traffic, and small high-locality stack regions.
"""

from __future__ import annotations

import abc
import random


class AddressStream(abc.ABC):
    """A source of effective addresses for one static memory instruction."""

    #: Constructor parameters that define the stream's behaviour.  The
    #: artifact cache keys off these alone: a trace depends only on the
    #: stream's configuration, never on its mutable cursor (``reset`` runs
    #: at the start of every generation).
    _token_fields: tuple[str, ...] = ()

    @abc.abstractmethod
    def next_address(self, rng: random.Random) -> int:
        """The next effective address (8-byte aligned)."""

    def reset(self) -> None:
        """Return to the initial state (new trace)."""

    @property
    def cache_token(self) -> str:
        """Deterministic identity for artifact-cache keys."""
        params = ",".join(f"{n}={getattr(self, n)}" for n in self._token_fields)
        return f"{type(self).__name__}({params})"


class StridedStream(AddressStream):
    """Array sweep: ``base, base+stride, ...`` wrapping at ``length`` bytes.

    The vector loops of tomcatv/su2cor walk multi-megabyte arrays this way;
    with ``length`` far above the cache size every line eventually misses.
    """

    _token_fields = ('base', 'stride', 'length',)

    def __init__(self, base: int, stride: int = 8, length: int = 1 << 20) -> None:
        if stride == 0:
            raise ValueError("stride must be non-zero")
        self.base = base
        self.stride = stride
        self.length = length
        self._offset = 0

    def next_address(self, rng: random.Random) -> int:
        address = self.base + self._offset
        self._offset = (self._offset + self.stride) % self.length
        return address & ~0x7

    def reset(self) -> None:
        self._offset = 0


class RandomStream(AddressStream):
    """Uniformly random accesses within a region (hash tables, compress)."""

    _token_fields = ('base', 'size',)

    def __init__(self, base: int, size: int) -> None:
        self.base = base
        self.size = size

    def next_address(self, rng: random.Random) -> int:
        return (self.base + rng.randrange(0, self.size)) & ~0x7


class HotColdStream(AddressStream):
    """A small hot region hit with probability ``hot_fraction``, else a
    large cold region — the locality mixture of pointer-rich integer code."""

    _token_fields = ('base', 'hot_size', 'cold_size', 'hot_fraction',)

    def __init__(
        self,
        base: int,
        hot_size: int = 4096,
        cold_size: int = 1 << 22,
        hot_fraction: float = 0.9,
    ) -> None:
        self.base = base
        self.hot_size = hot_size
        self.cold_size = cold_size
        self.hot_fraction = hot_fraction

    def next_address(self, rng: random.Random) -> int:
        if rng.random() < self.hot_fraction:
            return (self.base + rng.randrange(0, self.hot_size)) & ~0x7
        return (self.base + self.hot_size + rng.randrange(0, self.cold_size)) & ~0x7


class FixedStream(AddressStream):
    """A single address (scalar globals, spill slots)."""

    _token_fields = ('address',)

    def __init__(self, address: int) -> None:
        self.address = address & ~0x7

    def next_address(self, rng: random.Random) -> int:
        return self.address


class StackStream(AddressStream):
    """Random access within a small stack frame (very high locality)."""

    _token_fields = ('base', 'frame_size',)

    def __init__(self, base: int, frame_size: int = 512) -> None:
        self.base = base
        self.frame_size = frame_size

    def next_address(self, rng: random.Random) -> int:
        return (self.base + rng.randrange(0, self.frame_size)) & ~0x7
