"""Dynamic instruction traces.

The paper's methodology is trace driven: ATOM instruments the (re)scheduled
binary and the instrumented run feeds the multicluster simulator.  Our
stand-in is a :class:`DynamicInstruction` stream produced by
:mod:`repro.workloads.tracegen`; each record carries exactly what the
simulator consumes — the static instruction (registers decide
distribution), its PC (predictor/I-cache indexing), the effective address
of memory operations, and the actual direction of conditional branches.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instructions import MachineInstruction
from repro.ir.machine_program import MachineInstrMeta


class DynamicInstruction:
    """One executed instruction in a trace.

    ``reassign`` optionally carries a new register-to-cluster assignment
    that takes effect *before* this instruction dispatches — the dynamic
    reassignment mechanism the paper defers to [3] and Section 6 ("the
    compiler could provide the hardware with hints to indicate when the
    reassignment could be made").  The processor drains, pays the transfer
    cost, switches maps, and resumes.
    """

    __slots__ = ("instr", "meta", "seq", "address", "taken", "reassign")

    def __init__(
        self,
        instr: MachineInstruction,
        meta: MachineInstrMeta,
        seq: int,
        address: Optional[int] = None,
        taken: Optional[bool] = None,
        reassign: Optional[object] = None,
    ) -> None:
        self.instr = instr
        self.meta = meta
        self.seq = seq
        self.address = address
        self.taken = taken
        self.reassign = reassign

    @property
    def pc(self) -> int:
        return self.meta.pc

    @property
    def is_conditional(self) -> bool:
        return self.instr.opcode.is_conditional_branch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.address is not None:
            extra = f" @0x{self.address:x}"
        if self.taken is not None:
            extra += f" taken={self.taken}"
        return f"<#{self.seq} pc=0x{self.pc:x} {self.instr.format()}{extra}>"
