"""SPEC92 benchmark profiles (the six programs of Table 2).

Each profile parameterizes the synthetic generator to match the documented
character of the benchmark — the properties that drive the paper's
results: instruction mix (integer vs FP vs divide), dependence-chain depth
(ILP), basic-block geometry, branch predictability, code footprint, and
memory locality.  The profiles are *behavioural stand-ins*, not
reimplementations; DESIGN.md records the substitution rationale.

* ``compress`` — LZW compression: integer, hash-table probes over a large
  scattered region (data-dependent loads), data-dependent branches of
  middling predictability, modest basic blocks.
* ``doduc`` — Monte-Carlo nuclear-reactor simulation: irregular FP code,
  FP divides, branchy for a floating-point program, mid-sized blocks.
* ``gcc1`` — the GNU C compiler: integer, very branchy, many distinct
  small loop nests (large code footprint), pointer-rich hot/cold memory.
* ``ora`` — ray tracing through optical systems: a tight FP kernel
  dominated by a long serial chain of divides/square-roots, nearly
  perfectly predictable branches, tiny data footprint.
* ``su2cor`` — quantum-physics quark propagation: vectorizable FP loops,
  long basic blocks, strided sweeps over multi-megabyte arrays.
* ``tomcatv`` — vectorized mesh generation: the most memory-bound; very
  long blocks sweeping several large arrays with high ILP.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.generator import (
    ArraySpec,
    LoopSpec,
    Workload,
    WorkloadSpec,
    generate_workload,
)

#: Default dynamic trace length used by the Table 2 experiment.
DEFAULT_TRACE_LENGTH = 120_000


def build_compress(seed: int = 11) -> Workload:
    spec = WorkloadSpec(
        name="compress",
        seed=seed,
        mix={
            "int_alu": 0.44,
            "int_mul": 0.01,
            "fp_alu": 0.0,
            "fp_div": 0.0,
            "load": 0.34,
            "store": 0.21,
        },
        arrays=[
            ArraySpec("htab", kind="hotcold", size=1 << 19, hot_fraction=0.94),
            ArraySpec("codetab", kind="hotcold", size=1 << 17, hot_fraction=0.93),
            ArraySpec("inbuf", kind="strided", size=1 << 15, stride=8),
            ArraySpec("outbuf", kind="strided", size=1 << 15, stride=8),
        ],
        loops=[
            LoopSpec(
                body_blocks=4,
                block_size=8,
                trip_count=60,
                trip_jitter=15,
                diamond_prob=0.7,
                diamond_model="bernoulli",
                diamond_taken_prob=0.78,
                arrays=("htab", "codetab", "inbuf"),
            ),
            LoopSpec(
                body_blocks=3,
                block_size=7,
                trip_count=35,
                trip_jitter=10,
                diamond_prob=0.7,
                diamond_model="markov",
                diamond_taken_prob=0.72,
                arrays=("htab", "outbuf"),
            ),
            LoopSpec(
                body_blocks=2,
                block_size=8,
                trip_count=50,
                trip_jitter=12,
                diamond_prob=0.6,
                diamond_model="bernoulli",
                diamond_taken_prob=0.82,
                arrays=("codetab", "inbuf", "outbuf"),
            ),
        ],
        chain_bias=0.55,
        live_window=9,
        accumulators=2,
        accumulate_prob=0.45,
        code_replicas=3,
    )
    return generate_workload(spec)


def build_doduc(seed: int = 23) -> Workload:
    spec = WorkloadSpec(
        name="doduc",
        seed=seed,
        mix={
            "int_alu": 0.18,
            "int_mul": 0.01,
            "fp_alu": 0.38,
            "fp_div": 0.02,
            "load": 0.27,
            "store": 0.125,
        },
        arrays=[
            ArraySpec("state", kind="hotcold", size=1 << 18, fp=True, hot_fraction=0.94),
            ArraySpec("xsect", kind="strided", size=48 * 1024, stride=8, fp=True),
        ],
        loops=[
            LoopSpec(
                body_blocks=3,
                block_size=9,
                trip_count=30,
                trip_jitter=10,
                diamond_prob=0.6,
                diamond_model="markov",
                diamond_taken_prob=0.75,
                arrays=("state", "xsect"),
            ),
            LoopSpec(
                body_blocks=2,
                block_size=10,
                trip_count=60,
                trip_jitter=5,
                diamond_prob=0.4,
                diamond_model="pattern",
                arrays=("state",),
            ),
            LoopSpec(
                body_blocks=2,
                block_size=8,
                trip_count=20,
                trip_jitter=6,
                diamond_prob=0.5,
                diamond_taken_prob=0.6,
                arrays=("xsect",),
            ),
        ],
        chain_bias=0.6,
        live_window=11,
        accumulators=3,
        accumulate_prob=0.4,
        code_replicas=4,
    )
    return generate_workload(spec)


def build_gcc1(seed: int = 31) -> Workload:
    spec = WorkloadSpec(
        name="gcc1",
        seed=seed,
        mix={
            "int_alu": 0.47,
            "int_mul": 0.005,
            "fp_alu": 0.0,
            "fp_div": 0.0,
            "load": 0.33,
            "store": 0.195,
        },
        arrays=[
            ArraySpec("rtl", kind="hotcold", size=1 << 21, hot_fraction=0.8),
            ArraySpec("symtab", kind="random", size=1 << 18),
            ArraySpec("obstack", kind="strided", size=1 << 17, stride=8),
        ],
        loops=[
            LoopSpec(
                body_blocks=2,
                block_size=5,
                trip_count=8,
                trip_jitter=5,
                diamond_prob=0.85,
                diamond_model="bernoulli",
                diamond_taken_prob=0.88,
                arrays=("rtl", "symtab"),
            ),
            LoopSpec(
                body_blocks=3,
                block_size=5,
                trip_count=12,
                trip_jitter=6,
                diamond_prob=0.8,
                diamond_model="markov",
                diamond_taken_prob=0.82,
                arrays=("rtl", "obstack"),
            ),
        ],
        chain_bias=0.48,
        live_window=9,
        accumulators=2,
        accumulate_prob=0.15,
        # Many distinct nests: the big-code benchmark of the suite.
        code_replicas=40,
    )
    return generate_workload(spec)


def build_ora(seed: int = 41) -> Workload:
    spec = WorkloadSpec(
        name="ora",
        seed=seed,
        mix={
            "int_alu": 0.13,
            "int_mul": 0.0,
            "fp_alu": 0.72,
            "fp_div": 0.04,
            "load": 0.07,
            "store": 0.04,
        },
        arrays=[
            ArraySpec("rays", kind="stack", size=2048, fp=True),
        ],
        loops=[
            LoopSpec(
                body_blocks=3,
                block_size=10,
                trip_count=150,
                trip_jitter=0,
                diamond_prob=0.3,
                diamond_model="bernoulli",
                diamond_taken_prob=0.92,
                arrays=("rays",),
            ),
            LoopSpec(
                body_blocks=2,
                block_size=9,
                trip_count=80,
                trip_jitter=0,
                diamond_prob=0.2,
                diamond_model="pattern",
                arrays=("rays",),
            ),
        ],
        # A long serial chain: successive surface intersections depend on
        # each other (sqrt/divide chains).
        chain_bias=0.88,
        live_window=5,
        accumulators=1,
        accumulate_prob=0.5,
    )
    return generate_workload(spec)


def build_su2cor(seed: int = 53) -> Workload:
    spec = WorkloadSpec(
        name="su2cor",
        seed=seed,
        mix={
            "int_alu": 0.14,
            "int_mul": 0.005,
            "fp_alu": 0.44,
            "fp_div": 0.012,
            "load": 0.28,
            "store": 0.125,
        },
        arrays=[
            ArraySpec("gauge", kind="strided", size=1 << 21, stride=8, fp=True),
            ArraySpec("prop", kind="strided", size=1 << 21, stride=16, fp=True),
            ArraySpec("tmp", kind="strided", size=1 << 18, stride=8, fp=True),
        ],
        loops=[
            LoopSpec(
                body_blocks=2,
                block_size=16,
                trip_count=100,
                trip_jitter=0,
                arrays=("gauge", "prop"),
            ),
            LoopSpec(
                body_blocks=2,
                block_size=14,
                trip_count=80,
                trip_jitter=0,
                diamond_prob=0.15,
                diamond_taken_prob=0.9,
                arrays=("prop", "tmp"),
            ),
            LoopSpec(
                body_blocks=1,
                block_size=18,
                trip_count=120,
                trip_jitter=0,
                arrays=("gauge", "tmp"),
            ),
        ],
        chain_bias=0.36,
        live_window=13,
        accumulators=3,
        accumulate_prob=0.13,
    )
    return generate_workload(spec)


def build_tomcatv(seed: int = 61) -> Workload:
    spec = WorkloadSpec(
        name="tomcatv",
        seed=seed,
        mix={
            "int_alu": 0.12,
            "int_mul": 0.0,
            "fp_alu": 0.42,
            "fp_div": 0.015,
            "load": 0.31,
            "store": 0.135,
        },
        arrays=[
            ArraySpec("x", kind="strided", size=1 << 22, stride=8, fp=True),
            ArraySpec("y", kind="strided", size=1 << 22, stride=8, fp=True),
            ArraySpec("rx", kind="strided", size=1 << 21, stride=8, fp=True),
            ArraySpec("ry", kind="strided", size=1 << 21, stride=8, fp=True),
        ],
        loops=[
            LoopSpec(
                body_blocks=1,
                block_size=22,
                trip_count=250,
                trip_jitter=0,
                arrays=("x", "y", "rx"),
            ),
            LoopSpec(
                body_blocks=2,
                block_size=18,
                trip_count=250,
                trip_jitter=0,
                arrays=("rx", "ry", "y"),
            ),
        ],
        chain_bias=0.35,
        live_window=12,
        accumulators=2,
        accumulate_prob=0.12,
    )
    return generate_workload(spec)


#: Benchmark registry: name -> builder.
SPEC92: dict[str, Callable[[], Workload]] = {
    "compress": build_compress,
    "doduc": build_doduc,
    "gcc1": build_gcc1,
    "ora": build_ora,
    "su2cor": build_su2cor,
    "tomcatv": build_tomcatv,
}

#: Paper Table 2 reference values: benchmark -> (none %, local %).
PAPER_TABLE2: dict[str, tuple[int, int]] = {
    "compress": (-14, +6),
    "doduc": (-21, -15),
    "gcc1": (-15, -10),
    "ora": (-5, -22),
    "su2cor": (-36, -25),
    "tomcatv": (-41, -19),
}


def build_benchmark(name: str) -> Workload:
    """Build one of the six SPEC92 stand-ins by name."""
    try:
        return SPEC92[name]()
    except KeyError:
        import difflib

        from repro.errors import ConfigError

        message = f"unknown benchmark {name!r}; choose from {sorted(SPEC92)}"
        close = difflib.get_close_matches(name, SPEC92, n=1)
        if close:
            message += f" (did you mean {close[0]!r}?)"
        raise ConfigError(message, benchmark=name) from None
