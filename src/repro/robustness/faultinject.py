"""Composable fault injectors for the robustness test matrix.

Two families:

* **Trace-level injectors** — pure functions producing a corrupted copy
  of a trace.  These model bad input data (a mangled ATOM trace file) and
  must be rejected by :func:`repro.robustness.validate.validate_trace`
  before simulation.
* **Runtime injectors** — callables installed on a live processor via
  :meth:`Processor.install_fault`; each is invoked once per cycle before
  event processing and sabotages internal state (dropped or duplicated
  transfer-buffer entries, a stuck functional unit, a dead event bus).
  The simulator must terminate with a typed
  :class:`~repro.errors.ReproError` — via the ``self_check`` invariant
  checker, the watchdog, or the deadlock guard — never hang and never
  complete with silently wrong counts.

Every runtime injector records whether it actually fired (``fired``),
so tests can assert the fault was injected and not dodged by timing.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional, Sequence

from repro.isa.registers import Register
from repro.workloads.trace import DynamicInstruction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uarch.processor import Processor


# ===================================================================== traces
def corrupt_operand(
    trace: Sequence[DynamicInstruction],
    index: int,
    src_position: int,
    replacement: Register,
) -> list[DynamicInstruction]:
    """Replace one source operand of ``trace[index]`` with ``replacement``.

    Models a bit-flipped register field: the dynamic record no longer
    matches the static instruction it claims (same uid), which
    ``validate_trace(..., program=...)`` detects as a :class:`TraceError`.
    """
    corrupted = list(trace)
    victim = corrupted[index]
    srcs = list(victim.instr.srcs)
    srcs[src_position] = replacement
    mutant = dataclasses.replace(victim.instr, srcs=tuple(srcs))
    corrupted[index] = DynamicInstruction(
        mutant,
        victim.meta,
        victim.seq,
        address=victim.address,
        taken=victim.taken,
        reassign=victim.reassign,
    )
    return corrupted


def truncate_trace(
    trace: Sequence[DynamicInstruction], drop_at: int, count: int = 1
) -> list[DynamicInstruction]:
    """Drop ``count`` records starting at ``drop_at`` without renumbering.

    Models a truncated/garbled trace file: the resulting sequence-number
    gap breaks the simulator's replay-rewind contract and is rejected by
    ``validate_trace`` as a :class:`TraceError`.
    """
    return list(trace[:drop_at]) + list(trace[drop_at + count:])


# ==================================================================== runtime
class RuntimeFault:
    """Base class: armed from ``at_cycle``, fires at most once."""

    def __init__(self, at_cycle: int) -> None:
        self.at_cycle = at_cycle
        self.fired = False
        self.fired_cycle = -1

    def __call__(self, processor: "Processor", cycle: int) -> None:
        if self.fired or cycle < self.at_cycle:
            return
        if self._inject(processor, cycle):
            self.fired = True
            self.fired_cycle = cycle

    def _inject(self, processor: "Processor", cycle: int) -> bool:
        """Attempt the sabotage; return True once it actually happened."""
        raise NotImplementedError


def _buffer_of(processor: "Processor", cluster: int, kind: str):
    owner = processor.clusters[cluster]
    return owner.operand_buffer if kind == "operand" else owner.result_buffer


class DropTransferEntry(RuntimeFault):
    """Silently lose one occupied transfer-buffer entry.

    The owning master (operand buffer) or slave (result buffer) later
    issues expecting the entry; with ``self_check`` enabled the issue-time
    protocol invariant raises :class:`InvariantViolation`.
    """

    def __init__(self, at_cycle: int, cluster: int = 0, kind: str = "operand") -> None:
        super().__init__(at_cycle)
        self.cluster = cluster
        self.kind = kind
        self.dropped_seq = -1

    def _inject(self, processor: "Processor", cycle: int) -> bool:
        from repro.uarch.uop import Role, UopState

        buffer = _buffer_of(processor, self.cluster, self.kind)
        if not buffer.entries:
            return False  # stay armed until there is something to drop
        # Only drop an entry whose consumer (the master reading a forwarded
        # operand, or the slave reading a forwarded result, in this cluster)
        # has not issued yet — dropping an already-consumed, pending-free
        # entry would go unnoticed, which is not the fault being modelled.
        consumer_role = Role.MASTER if self.kind == "operand" else Role.SLAVE
        unconsumed = {
            UopState.WAITING,
            UopState.READY,
            UopState.SUSPENDED,
        }
        by_seq = {entry.seq: entry for entry in processor._rob}
        for seq in buffer.entries:
            entry = by_seq.get(seq)
            if entry is None:
                continue
            for uop in entry.uops:
                if (
                    uop.role is consumer_role
                    and uop.cluster == self.cluster
                    and uop.state in unconsumed
                ):
                    self.dropped_seq = seq
                    del buffer.entries[seq]
                    return True
        return False


class DuplicateTransferEntry(RuntimeFault):
    """Insert a bogus transfer-buffer entry owned by nobody.

    A lost squash or double allocation leaves exactly this state; the
    per-cycle ``self_check`` ownership invariant raises
    :class:`InvariantViolation` on the next cycle.
    """

    BOGUS_SEQ = 10**9

    def __init__(self, at_cycle: int, cluster: int = 0, kind: str = "operand") -> None:
        super().__init__(at_cycle)
        self.cluster = cluster
        self.kind = kind

    def _inject(self, processor: "Processor", cycle: int) -> bool:
        buffer = _buffer_of(processor, self.cluster, self.kind)
        if buffer.is_full:
            return False
        buffer.entries[self.BOGUS_SEQ] = cycle
        return True


class StuckFunctionalUnit(RuntimeFault):
    """Wedge every FP divider of one cluster (hardware fault model).

    Divide uops stay ready-but-blocked forever; the forward-progress
    watchdog raises :class:`WatchdogTimeout` after ``progress_window``
    cycles with no fetch/dispatch/issue/retire activity.
    """

    STUCK_UNTIL = 10**15

    def __init__(self, at_cycle: int, cluster: int = 0) -> None:
        super().__init__(at_cycle)
        self.cluster = cluster

    def _inject(self, processor: "Processor", cycle: int) -> bool:
        owner = processor.clusters[self.cluster]
        owner.divider_free_at = [self.STUCK_UNTIL] * len(owner.divider_free_at)
        return True


class DropPendingEvents(RuntimeFault):
    """Kill the event bus: discard all scheduled wakeups/completions.

    Stays active every cycle from ``at_cycle`` on (a dead bus does not
    recover).  In-flight instructions never complete: a single-cluster
    machine drains into the no-pending-events state and the deadlock
    guard raises :class:`SimulationError` with the diagnostic ring-buffer
    dump; a multicluster machine falls into a replay storm (squash and
    refetch forever) that the cycle-budget watchdog ends with
    :class:`WatchdogTimeout`.  Either way: typed, never a hang.
    """

    def __call__(self, processor: "Processor", cycle: int) -> None:
        if cycle < self.at_cycle:
            return
        if processor._events or processor._event_cycles:
            processor._events.clear()
            processor._event_cycles.clear()
            if not self.fired:
                self.fired = True
                self.fired_cycle = cycle

    def _inject(self, processor: "Processor", cycle: int) -> bool:  # pragma: no cover
        raise AssertionError("DropPendingEvents overrides __call__")


# ============================================================== fault plans
#
# A *fault plan* is the declarative, serializable form of an injection
# schedule: which fault, on which benchmark, during which evaluation part,
# from which cycle (or trace index), and for how many sweep attempts.  The
# chaos harness generates plans from a seeded PRNG, the evaluation harness
# applies them (see ``EvaluationOptions.fault_plan``), and replay bundles
# embed them — the same plan always rebuilds the same injectors, which is
# what makes an induced failure deterministically replayable.

#: Runtime injector kinds (installed on a live processor).
RUNTIME_FAULT_KINDS = (
    "stuck_divider",
    "drop_transfer",
    "duplicate_transfer",
    "drop_events",
)
#: Trace corruption kinds (applied to the dynamic trace before validation).
TRACE_FAULT_KINDS = ("truncate_trace", "corrupt_operand")
#: Executor-level worker faults (injected at task pickup in a supervised
#: worker, never inside the simulation): a SIGKILL'd worker, a wedged
#: worker, and a result dropped after computation (a "partitioned" host).
WORKER_FAULT_KINDS = ("worker_kill", "worker_stall", "worker_partition")
#: Host-level faults (injected at task pickup in a distributed worker
#: daemon, never inside the simulation): a SIGKILL'd host process, a
#: wedged host, and a network partition (the socket dropped mid-task,
#: the work possibly done but the result unreachable).
HOST_FAULT_KINDS = ("host_kill", "host_stall", "host_partition")


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: what, where, when, and for how long.

    ``clear_after`` models transience in *attempt* space: the fault is
    active only while ``attempt < clear_after`` (``None`` = persistent).
    A spec with ``clear_after=1`` sabotages the first attempt and lets a
    retry through clean — the shape the retry policy exists for.
    """

    kind: str
    benchmark: Optional[str] = None  # None = every benchmark
    part: Optional[str] = None       # None = every evaluation part
    #: First active cycle (runtime faults) or trace index (trace faults).
    at_cycle: int = 0
    cluster: int = 0
    buffer: str = "operand"
    #: Attempts before the fault clears; ``None`` = persistent.
    clear_after: Optional[int] = None

    def __post_init__(self) -> None:
        valid = (
            RUNTIME_FAULT_KINDS
            + TRACE_FAULT_KINDS
            + WORKER_FAULT_KINDS
            + HOST_FAULT_KINDS
        )
        if self.kind not in valid:
            from repro.errors import ConfigError

            raise ConfigError(
                f"unknown fault kind {self.kind!r}; valid: {valid}",
                kind=self.kind,
            )

    def active(self, benchmark: str, part: str, attempt: int) -> bool:
        if self.benchmark is not None and self.benchmark != benchmark:
            return False
        if self.part is not None and self.part != part:
            return False
        if self.clear_after is not None and attempt >= self.clear_after:
            return False
        return True

    def build_runtime(self) -> RuntimeFault:
        """Instantiate the live injector for a runtime fault spec."""
        if self.kind == "stuck_divider":
            return StuckFunctionalUnit(self.at_cycle, cluster=self.cluster)
        if self.kind == "drop_transfer":
            return DropTransferEntry(
                self.at_cycle, cluster=self.cluster, kind=self.buffer
            )
        if self.kind == "duplicate_transfer":
            return DuplicateTransferEntry(
                self.at_cycle, cluster=self.cluster, kind=self.buffer
            )
        if self.kind == "drop_events":
            return DropPendingEvents(self.at_cycle)
        raise AssertionError(f"not a runtime fault kind: {self.kind!r}")

    def apply_trace(
        self, trace: Sequence[DynamicInstruction]
    ) -> Sequence[DynamicInstruction]:
        """Apply a trace-corruption spec, returning a sabotaged copy.

        Degrades to a no-op on traces too short to corrupt — a dodged
        fault, which the chaos harness counts as benign.
        """
        if self.kind == "truncate_trace":
            if len(trace) < 3:
                return trace
            drop_at = max(1, min(self.at_cycle, len(trace) - 2))
            return truncate_trace(trace, drop_at)
        if self.kind == "corrupt_operand":
            from repro.isa.registers import int_reg

            replacement = int_reg(9)
            start = min(self.at_cycle, max(0, len(trace) - 1))
            for index in range(start, len(trace)):
                srcs = trace[index].instr.srcs
                if srcs and srcs[0] != replacement:
                    return corrupt_operand(trace, index, 0, replacement)
            return trace
        raise AssertionError(f"not a trace fault kind: {self.kind!r}")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An immutable bundle of :class:`FaultSpec`\\ s for one sweep.

    Frozen and built from primitives only, so a plan pickles into worker
    processes, fingerprints into journal keys, and serializes into replay
    bundles without special cases.
    """

    specs: tuple[FaultSpec, ...] = ()

    def runtime_faults(
        self,
        benchmark: str,
        part: str,
        attempt: int,
        clusters: Optional[int] = None,
    ) -> list[RuntimeFault]:
        """Live injectors for the active specs.

        ``clusters`` (the target machine's cluster count) drops specs
        aimed at a cluster the machine does not have — a dodged fault,
        like a trace corruption on a too-short trace: chaos schedules
        are machine-agnostic, and a single-cluster baseline simply has
        no cluster 1 to sabotage.
        """
        return [
            spec.build_runtime()
            for spec in self.specs
            if spec.kind in RUNTIME_FAULT_KINDS
            and spec.active(benchmark, part, attempt)
            and (clusters is None or spec.cluster < clusters)
        ]

    def worker_fault(
        self, benchmark: str, part: str, dispatch: int
    ) -> Optional[str]:
        """The active worker-fault kind for this task dispatch, if any.

        ``dispatch`` is the executor's 0-based dispatch count for the
        task, so ``clear_after=1`` kills the first worker that picks the
        task up and lets the re-dispatch through clean — the transient
        host loss the supervised executor exists to survive, while
        ``clear_after=None`` models a persistently poisoned task that
        must trip the circuit breaker.
        """
        for spec in self.specs:
            if spec.kind in WORKER_FAULT_KINDS and spec.active(
                benchmark, part, dispatch
            ):
                return spec.kind
        return None

    def host_fault(
        self, benchmark: str, part: str, dispatch: int
    ) -> Optional[str]:
        """The active host-fault kind for this task dispatch, if any.

        The distributed worker daemon's mirror of :meth:`worker_fault`:
        ``dispatch`` is the coordinator's 0-based dispatch count, so
        ``clear_after=1`` takes down the first *host* that leases the
        task and lets the re-dispatch (on a surviving host) through
        clean, while ``clear_after=None`` poisons the task on every host
        until the coordinator's cascade gives up on remote execution.
        """
        for spec in self.specs:
            if spec.kind in HOST_FAULT_KINDS and spec.active(
                benchmark, part, dispatch
            ):
                return spec.kind
        return None

    def apply_trace_faults(
        self,
        benchmark: str,
        part: str,
        attempt: int,
        trace: Sequence[DynamicInstruction],
    ) -> Sequence[DynamicInstruction]:
        for spec in self.specs:
            if spec.kind in TRACE_FAULT_KINDS and spec.active(
                benchmark, part, attempt
            ):
                trace = spec.apply_trace(trace)
        return trace

    def __bool__(self) -> bool:
        return bool(self.specs)

    # ------------------------------------------------------- serialization
    def as_dict(self) -> dict:
        return {"specs": [dataclasses.asdict(spec) for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            specs=tuple(FaultSpec(**spec) for spec in data.get("specs", ()))
        )
