"""Self-contained replay bundles: failures you can re-run, not just read.

When a sweep row fails unrecoverably (permanent failure, or a transient
one that exhausted its retry budget), the orchestration layer serializes
everything needed to re-create the failure *deterministically* into one
JSON file:

* the benchmark name (resolved through the ``SPEC92`` registry),
* the failing evaluation part and attempt index,
* the full :class:`~repro.experiments.harness.EvaluationOptions`
  (pickled — partitioner instance, machine configs, compiler options),
* the declarative fault-injection plan, both machine-readable (inside
  the pickled options) and human-readable (as JSON, for eyeballs),
* the typed error that was observed (type, message, context).

``repro replay <bundle.json>`` rebuilds the run and asserts it dies the
same way — the difference between "a worker failed once under --jobs 8"
and a unit-test-sized reproduction on a developer's machine.  The chaos
harness replays every bundle it generates, so the guarantee is
continuously exercised, not aspirational.
"""

from __future__ import annotations

import base64
import json
import pickle
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional, Union

from repro.errors import ConfigError, ReproError
from repro.robustness.atomicio import atomic_write_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.harness import EvaluationOptions

#: Bump when the bundle layout changes incompatibly.
BUNDLE_SCHEMA = 1


def _jsonable(value: Any) -> Any:
    """Context dicts can carry arbitrary objects; degrade them to repr."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


@dataclass
class ReplayBundle:
    """Everything needed to deterministically re-run one failure."""

    benchmark: str
    #: Failing evaluation part (``None`` = the whole evaluation, e.g. a
    #: failure before any part ran).
    part: Optional[str]
    #: The attempt index that finally failed (fault specs are
    #: attempt-sensitive, so replay must run the same attempt).
    attempt: int
    error_type: str
    error_message: str
    error_context: dict
    #: base64(pickle(EvaluationOptions)) with cache/jobs/retry stripped.
    options_pickle: str
    #: Human-readable copy of the fault plan (authoritative copy rides in
    #: the pickled options).
    fault_plan: Optional[dict] = None
    trace_length: int = 0
    trace_seed: int = 0
    created: str = ""
    schema: int = BUNDLE_SCHEMA

    # ------------------------------------------------------------ contents
    def options(self) -> "EvaluationOptions":
        try:
            return pickle.loads(base64.b64decode(self.options_pickle))
        except Exception as error:
            raise ConfigError(
                "replay bundle's pickled options are unreadable "
                f"({type(error).__name__}: {error}); the bundle was written "
                "by an incompatible build",
                benchmark=self.benchmark,
            ) from None

    # ------------------------------------------------------------- file IO
    def as_dict(self) -> dict:
        return asdict(self)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        atomic_write_json(path, self.as_dict())
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ReplayBundle":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise ConfigError(
                f"cannot read replay bundle {str(path)!r}: {error}",
                path=str(path),
            ) from None
        except ValueError:
            raise ConfigError(
                f"replay bundle {str(path)!r} is not valid JSON",
                path=str(path),
            ) from None
        if not isinstance(data, dict) or "benchmark" not in data:
            raise ConfigError(
                f"{str(path)!r} is not a replay bundle", path=str(path)
            )
        schema = data.get("schema")
        if schema != BUNDLE_SCHEMA:
            raise ConfigError(
                f"replay bundle schema {schema!r} is not supported "
                f"(expected {BUNDLE_SCHEMA})",
                path=str(path),
            )
        fields = {
            k: v for k, v in data.items() if k in cls.__dataclass_fields__
        }
        return cls(**fields)


def capture_bundle(
    benchmark: str,
    options: "EvaluationOptions",
    *,
    error_type: str,
    error_message: str,
    error_context: Optional[dict] = None,
    part: Optional[str] = None,
    attempt: int = 0,
) -> ReplayBundle:
    """Freeze a failing run into a bundle.

    The embedded options are normalized to the deterministic serial
    shape: no cache, one worker, no retry policy — replay is a single
    attempt at the recorded attempt index.
    """
    sealed = replace(options, cache=None, jobs=1, retry=None, fault_attempt=0)
    return ReplayBundle(
        benchmark=benchmark,
        part=part,
        attempt=attempt,
        error_type=error_type,
        error_message=error_message,
        error_context=_jsonable(error_context or {}),
        options_pickle=base64.b64encode(
            pickle.dumps(sealed, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii"),
        fault_plan=(
            options.fault_plan.as_dict() if options.fault_plan else None
        ),
        trace_length=options.trace_length,
        trace_seed=options.trace_seed,
        created=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    )


@dataclass
class ReplayResult:
    """The verdict of re-running a bundle."""

    bundle: ReplayBundle
    reproduced: bool
    actual_type: Optional[str]
    actual_message: Optional[str]

    def format(self) -> str:
        b = self.bundle
        lines = [
            f"replay: {b.benchmark}"
            + (f" part={b.part}" if b.part else "")
            + f" attempt={b.attempt}",
            f"  expected: {b.error_type}: {b.error_message}",
        ]
        if self.actual_type is None:
            lines.append("  actual:   run completed without error")
        else:
            lines.append(f"  actual:   {self.actual_type}: {self.actual_message}")
        lines.append(f"  reproduced: {self.reproduced}")
        return "\n".join(lines)


def replay(bundle: ReplayBundle) -> ReplayResult:
    """Deterministically re-run a bundle and compare the failure.

    Reproduced means the typed error class *and* its message match the
    recorded ones — same failure, not merely "it also failed".
    """
    from repro.experiments.harness import (
        evaluate_workload,
        evaluate_workload_part,
    )
    from repro.workloads.spec92 import SPEC92

    if bundle.benchmark not in SPEC92:
        raise ConfigError(
            f"replay bundle names unknown benchmark {bundle.benchmark!r}",
            benchmark=bundle.benchmark,
        )
    options = replace(
        bundle.options(),
        cache=None,
        jobs=1,
        retry=None,
        fault_attempt=bundle.attempt,
    )
    workload = SPEC92[bundle.benchmark]()
    actual_type: Optional[str] = None
    actual_message: Optional[str] = None
    try:
        if bundle.part is not None:
            evaluate_workload_part(workload, bundle.part, options)
        else:
            evaluate_workload(workload, options)
    except ReproError as error:
        actual_type = type(error).__name__
        actual_message = error.message
    reproduced = (
        actual_type == bundle.error_type
        and actual_message == bundle.error_message
    )
    return ReplayResult(
        bundle=bundle,
        reproduced=reproduced,
        actual_type=actual_type,
        actual_message=actual_message,
    )


def replay_file(path: Union[str, Path]) -> ReplayResult:
    """Load + replay in one call (the CLI's entry point)."""
    return replay(ReplayBundle.load(path))


__all__ = [
    "BUNDLE_SCHEMA",
    "ReplayBundle",
    "ReplayResult",
    "capture_bundle",
    "replay",
    "replay_file",
]
