"""Pre-simulation validation of configurations, assignments, and traces.

Everything here runs *before* the first simulated cycle and raises a
typed :class:`~repro.errors.ConfigError` / :class:`~repro.errors.TraceError`
with machine-readable context, so a bad input never turns into a hang or
a silently wrong cycle count deep inside the event loop.

The checks mirror the structures of the paper's Section 2.1/3: the
register-to-cluster ownership map must cover the architectural namespace,
transfer buffers must exist on multicluster machines (the master/slave
protocol deadlocks without them), and every distribution plan derived
from a trace must be a well-formed master/slave pairing.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.distribution import plan_for_instruction
from repro.core.registers import RegisterAssignment
from repro.errors import ConfigError, TraceError
from repro.ir.machine_program import MachineProgram
from repro.isa.registers import RegisterClass, all_registers
from repro.uarch.config import ProcessorConfig
from repro.workloads.trace import DynamicInstruction


def validate_trace_length(trace_length: int, benchmark: Optional[str] = None) -> None:
    """Reject non-positive (or non-integer) requested trace lengths.

    A zero-length trace produces a simulation that retires zero
    instructions in zero cycles, which later divides by zero inside
    ``speedup_percent`` — reject the request up front instead.

    Raises:
        ConfigError: when ``trace_length`` is not a positive integer.
    """
    if isinstance(trace_length, bool) or not isinstance(trace_length, int):
        raise ConfigError(
            f"trace_length must be an integer, got {type(trace_length).__name__}",
            benchmark=benchmark,
            trace_length=repr(trace_length),
        )
    if trace_length <= 0:
        raise ConfigError(
            f"trace_length must be >= 1, got {trace_length} (an empty trace "
            "simulates zero cycles and makes every speedup undefined)",
            benchmark=benchmark,
            trace_length=trace_length,
        )


def validate_config(config: ProcessorConfig) -> None:
    """Reject inconsistent machine configurations.

    Raises:
        ConfigError: with the offending field in the message/context.
    """

    def bad(message: str, **ctx) -> ConfigError:
        return ConfigError(message, config=config.name, **ctx)

    if not config.clusters:
        raise bad("configuration has no clusters")
    for width_name in ("fetch_width", "dispatch_width", "retire_width"):
        if getattr(config, width_name) < 1:
            raise bad(f"{width_name} must be >= 1", field=width_name)
    if config.memory_latency < 0:
        raise bad("memory_latency must be >= 0", field="memory_latency")
    if config.replay_threshold < 1:
        raise bad("replay_threshold must be >= 1", field="replay_threshold")
    if config.cycle_budget < 0:
        raise bad("cycle_budget must be >= 0 (0 disables)", field="cycle_budget")
    if config.progress_window < 0:
        raise bad(
            "progress_window must be >= 0 (0 disables)", field="progress_window"
        )
    for index, cluster in enumerate(config.clusters):
        if cluster.dispatch_queue_entries < 1:
            raise bad(
                "dispatch queue must hold at least one entry",
                cluster=index,
                field="dispatch_queue_entries",
            )
        if cluster.int_physical_registers < 1 or cluster.fp_physical_registers < 1:
            raise bad(
                "each cluster needs at least one physical register per class",
                cluster=index,
            )
        rules = cluster.issue
        if rules.total < 1:
            raise bad("per-cluster issue total must be >= 1", cluster=index)
        if min(rules.integer, rules.floating_point, rules.memory, rules.control) < 0:
            raise bad("per-class issue limits must be >= 0", cluster=index)
        if cluster.operand_buffer_entries < 0 or cluster.result_buffer_entries < 0:
            raise bad("transfer-buffer capacities cannot be negative", cluster=index)
        if config.num_clusters > 1 and (
            cluster.operand_buffer_entries < 1 or cluster.result_buffer_entries < 1
        ):
            # Section 2.1: dual distribution forwards operands/results through
            # these buffers; with zero entries the protocol deadlocks.
            raise bad(
                "multicluster configurations need at least one operand and one "
                "result transfer-buffer entry per cluster",
                cluster=index,
            )
        if cluster.fp_dividers < 1:
            raise bad("each cluster needs at least one FP divider", cluster=index)


def validate_assignment(
    assignment: RegisterAssignment, config: Optional[ProcessorConfig] = None
) -> None:
    """Reject register-to-cluster maps that break the ownership partition.

    The ownership map must be *total* (every architectural register owned
    by at least one cluster — guaranteed by the constructor, re-checked
    here for maps built through other paths) with every owner in range,
    and the per-cluster accessible set must fit in the cluster's physical
    register file when ``config`` is supplied.
    """
    n = assignment.num_clusters
    if n < 1:
        raise ConfigError("register assignment must cover at least one cluster")
    valid = frozenset(range(n))
    for reg in all_registers():
        owners = assignment.clusters_of(reg)
        if not owners:
            raise ConfigError(
                "register owned by no cluster (ownership must be total)",
                register=reg.name,
            )
        if not owners <= valid:
            raise ConfigError(
                "register owned by out-of-range cluster",
                register=reg.name,
                owners=sorted(owners),
                num_clusters=n,
            )
        if reg.is_zero and owners != valid:
            raise ConfigError(
                "zero register must be readable from every cluster",
                register=reg.name,
            )
    if config is not None:
        if config.num_clusters != n:
            raise ConfigError(
                f"config has {config.num_clusters} clusters but the register "
                f"assignment has {n}",
                config=config.name,
            )
        for index, cluster in enumerate(config.clusters):
            for rclass, capacity in (
                (RegisterClass.INT, cluster.int_physical_registers),
                (RegisterClass.FP, cluster.fp_physical_registers),
            ):
                accessible = sum(
                    1
                    for reg in all_registers()
                    if reg.rclass is rclass
                    and not reg.is_zero
                    and index in assignment.clusters_of(reg)
                )
                if accessible >= capacity:
                    # ``==`` is rejected too: with zero spare physical
                    # registers the rename stage can never map a new
                    # destination, so the first write to this class
                    # deadlocks dispatch on an otherwise empty machine.
                    raise ConfigError(
                        f"cluster {index} must rename {accessible} {rclass.value} "
                        f"registers (plus at least one spare) but has only "
                        f"{capacity} physical registers",
                        config=config.name,
                        cluster=index,
                    )


def validate_machine_program(program: MachineProgram) -> None:
    """Reject structurally broken machine programs before trace generation."""
    labels = set(program.labels())
    if not labels:
        raise ConfigError("machine program has no blocks", program=program.name)
    if program.entry_label not in labels:
        raise ConfigError(
            "machine program entry label does not resolve",
            program=program.name,
            entry=program.entry_label,
        )
    seen_pcs: set[int] = set()
    for block in program.blocks():
        for succ in block.succ_labels:
            if succ not in labels:
                raise ConfigError(
                    "control-flow successor names a missing block",
                    program=program.name,
                    block=block.label,
                    successor=succ,
                )
        for meta in block.meta:
            if meta.pc in seen_pcs:
                raise ConfigError(
                    "duplicate PC (assign_pcs not run or program mangled)",
                    program=program.name,
                    block=block.label,
                    pc=meta.pc,
                )
            seen_pcs.add(meta.pc)


def validate_trace(
    trace: Sequence[DynamicInstruction],
    assignment: RegisterAssignment,
    program: Optional[MachineProgram] = None,
    benchmark: Optional[str] = None,
) -> None:
    """Reject malformed or corrupted traces before simulation.

    Checks (all required by the simulator's internal protocols):

    * sequence numbers are contiguous from 0 — replay recovery rewinds
      fetch with ``fetch_index = seq + 1``, so a gap corrupts refetch;
    * every conditional branch carries its actual direction;
    * every named register is owned by at least one in-range cluster;
    * the distribution plan of every static instruction is a well-formed
      master/slave pairing (distinct, in-range clusters; forwarded operand
      indices valid; dual distribution only on multicluster machines);
    * with ``program`` supplied, each dynamic record's instruction matches
      the static instruction holding the same uid — detects operand
      corruption between scheduling and tracing.
    """

    def bad(message: str, record: DynamicInstruction, **ctx) -> TraceError:
        return TraceError(
            message,
            benchmark=benchmark,
            seq=record.seq,
            instruction=record.instr.format(),
            **ctx,
        )

    static_by_uid = {}
    if program is not None:
        for instr, _meta in program.all_instructions():
            static_by_uid[instr.uid] = instr

    n = assignment.num_clusters
    valid_clusters = frozenset(range(n))
    checked_uids: set[int] = set()
    for position, record in enumerate(trace):
        if record.seq != position:
            raise bad(
                f"sequence numbers must be contiguous from 0 "
                f"(position {position} holds seq {record.seq})",
                record,
                position=position,
            )
        instr = record.instr
        if instr.opcode.is_conditional_branch and record.taken is None:
            raise bad("conditional branch carries no direction", record)
        if static_by_uid and instr.uid >= 0:
            static = static_by_uid.get(instr.uid)
            if static is None:
                raise bad("trace names an instruction uid the program lacks", record)
            if (
                static.opcode is not instr.opcode
                or static.dest != instr.dest
                or static.srcs != instr.srcs
            ):
                raise bad(
                    "trace record disagrees with the program's instruction "
                    f"(program has {static.format()})",
                    record,
                )
        # Per-static-instruction checks, once per uid (uid -1: every record).
        if instr.uid in checked_uids:
            continue
        if instr.uid >= 0:
            checked_uids.add(instr.uid)
        for reg in instr.named_registers():
            owners = assignment.clusters_of(reg)
            if not owners or not owners <= valid_clusters:
                raise bad(
                    "operand register is not owned by any in-range cluster",
                    record,
                    register=reg.name,
                )
        plan = plan_for_instruction(instr, assignment)
        if plan.master not in valid_clusters:
            raise bad("distribution master out of range", record, master=plan.master)
        if plan.is_dual:
            if n < 2:
                raise bad(
                    "dual distribution planned on a single-cluster machine", record
                )
            if plan.slave == plan.master or plan.slave not in valid_clusters:
                raise bad(
                    "master/slave pairing malformed",
                    record,
                    master=plan.master,
                    slave=plan.slave,
                )
            for i in plan.forwarded_src_indices:
                if not 0 <= i < len(instr.srcs):
                    raise bad(
                        "forwarded operand index out of range", record, index=i
                    )


def validate_run(
    config: ProcessorConfig,
    assignment: RegisterAssignment,
    trace: Sequence[DynamicInstruction],
    program: Optional[MachineProgram] = None,
    benchmark: Optional[str] = None,
) -> None:
    """Composite pre-flight check for one simulation run."""
    validate_config(config)
    validate_assignment(assignment, config)
    if program is not None:
        validate_machine_program(program)
    validate_trace(trace, assignment, program, benchmark=benchmark)
