"""Seeded, deterministic retry policy for sweep orchestration.

A production-scale sweep runs thousands of benchmark × configuration
evaluations; any one of them can die to a fault that would not recur
(an injected fault that clears, a resource blip, a wedged simulation a
watchdog put down).  The orchestration layer retries those — and *only*
those — with exponential backoff, and gives up immediately on failures
that are provably deterministic (bad configuration, corrupt trace,
compile bugs), because re-running a pure function on the same inputs
can only waste the attempt budget.

Two properties matter more than cleverness:

* **determinism** — the backoff schedule is a pure function of
  ``(policy.seed, token)``; the same seed and run token always produce
  the same delays and the same attempt budget, so a retried sweep is
  exactly reproducible and the chaos harness can assert outcomes.
* **classification** — :func:`classify_error` maps the
  :mod:`repro.errors` hierarchy onto retry/no-retry: configuration,
  trace, and compile errors are permanent (the inputs are wrong);
  simulation-time failures (including watchdog timeouts and invariant
  violations) are transient (the run, not the inputs, went wrong).  An
  error can override the default by carrying ``transient=True/False``
  in its context.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import (
    CompileError,
    ConfigError,
    ReproError,
    SimulationError,
    TraceError,
)

#: Classification labels.
TRANSIENT = "transient"
PERMANENT = "permanent"


def classify_error(error: BaseException) -> str:
    """``TRANSIENT`` (retry-worthy) or ``PERMANENT`` (degrade now).

    The default policy over the typed hierarchy:

    * ``ConfigError`` / ``TraceError`` / ``CompileError`` — permanent:
      deterministic functions of the run's inputs; a retry reruns the
      same failure.
    * ``SimulationError`` (and its watchdog/invariant subclasses) —
      transient: the run itself went wrong, which is exactly what fault
      injection and real-world flakiness look like.
    * anything else — permanent (unknown failures don't earn retries).

    A :class:`~repro.errors.ReproError` carrying ``transient`` in its
    context overrides the type-based default.
    """
    if isinstance(error, ReproError):
        override = error.context.get("transient")
        if override is not None:
            return TRANSIENT if override else PERMANENT
    if isinstance(error, (ConfigError, TraceError, CompileError)):
        return PERMANENT
    if isinstance(error, SimulationError):
        return TRANSIENT
    return PERMANENT


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential backoff with bounded, seeded jitter.

    Attempt ``k`` (0-based) that fails transiently sleeps
    ``base_delay * multiplier**k``, capped at ``max_delay``, scaled by a
    jitter factor drawn from ``[1 - jitter, 1 + jitter]`` using a PRNG
    seeded from ``(seed, token)`` — same policy and token, same
    schedule, every time, on every machine.
    """

    #: Total attempt budget per run (1 = no retries).
    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    #: Fractional jitter amplitude in [0, 1].
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                "retry policy needs max_attempts >= 1",
                max_attempts=self.max_attempts,
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(
                "retry jitter must be within [0, 1]", jitter=self.jitter
            )

    def schedule(self, token: str) -> list[float]:
        """This policy's deterministic delay schedule for ``token``
        (see :func:`backoff_schedule`)."""
        return backoff_schedule(self, token)


def backoff_schedule(policy: RetryPolicy, token: str) -> list[float]:
    """The full delay schedule (seconds) for one run token.

    ``schedule[k]`` is the sleep after failed attempt ``k``; the list has
    ``max_attempts - 1`` entries (the last attempt is never slept after).
    """
    digest = hashlib.sha256(f"{policy.seed}|{token}".encode("utf-8")).digest()
    rng = random.Random(int.from_bytes(digest[:8], "big"))
    delays = []
    for attempt in range(policy.max_attempts - 1):
        delay = min(policy.base_delay * policy.multiplier**attempt, policy.max_delay)
        delay *= 1.0 + policy.jitter * (2.0 * rng.random() - 1.0)
        delays.append(max(0.0, delay))
    return delays


@dataclass
class AttemptRecord:
    """One attempt's outcome, for journals and health reports."""

    attempt: int
    error_type: Optional[str] = None
    message: Optional[str] = None
    classification: Optional[str] = None
    delay_s: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.error_type is None


@dataclass
class RetryOutcome:
    """The successful value plus the attempt trail that led to it."""

    value: Any
    attempts: list[AttemptRecord] = field(default_factory=list)

    @property
    def retried(self) -> bool:
        return len(self.attempts) > 1


def run_with_retry(
    fn: Callable[[int], Any],
    policy: Optional[RetryPolicy] = None,
    token: str = "",
    classify: Callable[[BaseException], str] = classify_error,
    sleep: Optional[Callable[[float], None]] = time.sleep,
) -> RetryOutcome:
    """Run ``fn(attempt_index)`` under ``policy``.

    Transient :class:`~repro.errors.ReproError`\\ s are retried up to the
    attempt budget with the token's deterministic backoff schedule;
    permanent ones — and the final transient one — are re-raised with
    ``attempts`` and ``failure_class`` recorded in their context, so the
    degradation path (and any replay bundle) carries the retry history.

    ``policy=None`` means a single attempt (today's non-retrying
    behaviour); ``sleep=None`` skips the actual sleeping while keeping
    the recorded schedule (tests, chaos soak).
    """
    if policy is None:
        policy = RetryPolicy(max_attempts=1)
    delays = backoff_schedule(policy, token)
    attempts: list[AttemptRecord] = []
    for attempt in range(policy.max_attempts):
        try:
            value = fn(attempt)
        except ReproError as error:
            classification = classify(error)
            retryable = (
                classification == TRANSIENT and attempt + 1 < policy.max_attempts
            )
            delay = delays[attempt] if retryable else 0.0
            attempts.append(
                AttemptRecord(
                    attempt=attempt,
                    error_type=type(error).__name__,
                    message=error.message,
                    classification=classification,
                    delay_s=delay,
                )
            )
            if not retryable:
                error.context["attempts"] = attempt + 1
                error.context["failure_class"] = classification
                raise
            if sleep is not None and delay > 0.0:
                sleep(delay)
            continue
        attempts.append(AttemptRecord(attempt=attempt))
        return RetryOutcome(value=value, attempts=attempts)
    raise AssertionError("unreachable: loop always returns or raises")


__all__ = [
    "PERMANENT",
    "TRANSIENT",
    "AttemptRecord",
    "RetryOutcome",
    "RetryPolicy",
    "backoff_schedule",
    "classify_error",
    "run_with_retry",
]
