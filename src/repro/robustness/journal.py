"""Append-only JSONL run journal: crash-safe sweep progress + resume.

A sweep that dies — SIGKILL, OOM, power loss — must not throw away its
completed rows.  Every sweep driver (Table 2, ablations, Figure 6,
reassignment, chaos) can attach a :class:`RunJournal` rooted at a *run
directory*::

    run-dir/
        journal.jsonl          one JSON record per completed/failed row,
                               appended and fsync'd before the sweep moves on
        journal-<shard>.jsonl  the same, for a named shard (one journal per
                               executor/host when a sweep is split)
        artifacts/<key>.pkl    pickled row results too rich for JSON
                               (e.g. a full BenchmarkEvaluation)
        bundles/<key>.json     replay bundles for unrecoverable failures

**Sharded sweeps**: several executors (or hosts sharing a filesystem)
can journal into the same run directory without contending on one file
by each opening the journal with a distinct ``shard`` name.  Because
records are content-addressed, :func:`merge_journals` can later fold any
set of shards into a single resume-equivalent journal: rows are keyed by
``(key, fingerprint)``, so duplicates collapse, a completed row beats a
failed one for the same inputs, and ``--resume`` against the merged
directory reuses exactly the union of the shards' completed work.

The journal is *content-addressed*: each record carries a fingerprint of
every input that determines the row's value (via
:func:`repro.perf.fingerprint.fingerprint`).  ``--resume <run-dir>``
reuses a journaled row only when its key **and** fingerprint match the
current request, so resuming after editing options recomputes rather
than serving stale rows — and a resumed table is bit-identical to an
uninterrupted run, because the reused rows *are* the original results.

Append durability: each record is one ``write()`` of one line followed
by ``flush`` + ``fsync``.  A crash mid-append leaves at most one torn
trailing line, which the reader detects and ignores (the row is simply
recomputed on resume).
"""

from __future__ import annotations

import io
import json
import os
import pickle
import re
import shutil
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from repro.errors import ConfigError
from repro.robustness.atomicio import atomic_write_bytes

#: Schema version stamped on every journal record.
JOURNAL_SCHEMA = 1

_SLUG_RE = re.compile(r"[^A-Za-z0-9._-]+")


def _slug(key: str) -> str:
    """Filesystem-safe name for a row key."""
    return _SLUG_RE.sub("_", key).strip("_") or "row"


def parse_journal_line(line: str):
    """Classify one journal line; returns ``(kind, value)``.

    Kinds: ``"blank"`` (value ``None``), ``"torn"`` (unparseable or
    incomplete — value ``None``), ``"heartbeat"`` / ``"event"`` (value:
    the raw record dict), ``"row"`` (value: a :class:`JournalEntry`).
    Shared by the loader and the shard merger so both apply the same
    torn-line tolerance.
    """
    line = line.strip()
    if not line:
        return "blank", None
    try:
        record = json.loads(line)
        if not isinstance(record, dict):
            raise ValueError("journal record is not an object")
        status = record.get("status")
        if status == "heartbeat":
            return "heartbeat", record
        if status == "event":
            return "event", record
        entry = JournalEntry(
            **{
                k: v
                for k, v in record.items()
                if k in JournalEntry.__dataclass_fields__
            }
        )
        if not entry.key or entry.status not in ("completed", "failed"):
            raise ValueError("incomplete journal record")
    except (ValueError, TypeError):
        # A torn tail from a killed writer (or hand-edited garbage):
        # the row is recomputed, never trusted.
        return "torn", None
    return "row", entry


def shard_journal_paths(run_dir: Union[str, os.PathLike]) -> list[Path]:
    """Every journal file in a run directory, primary first then shards
    in sorted (deterministic) order."""
    run_dir = Path(run_dir)
    paths = []
    primary = run_dir / "journal.jsonl"
    if primary.exists():
        paths.append(primary)
    paths.extend(sorted(run_dir.glob("journal-*.jsonl")))
    return paths


def options_fingerprint(options: Any) -> str:
    """Fingerprint of every :class:`EvaluationOptions` field that can
    change a row's *value*.

    Excluded on purpose: ``jobs`` (parallel runs are bit-identical to
    serial), ``cache`` (a cache hit returns the same artifact), and
    ``retry`` (retries only repeat the same deterministic computation).
    Included: the fault plan — an injected fault absolutely changes the
    outcome, so a chaos journal can never satisfy a clean resume.
    """
    from repro.perf.fingerprint import fingerprint

    return fingerprint(
        (
            "journal-options/v1",
            options.trace_length,
            options.trace_seed,
            options.partitioner,
            options.single_config,
            options.dual_config,
            options.dual_assignment,
            options.compiler,
            options.validate,
            options.self_check,
            options.cycle_budget,
            options.fault_plan,
        )
    )


@dataclass
class JournalEntry:
    """One journaled row outcome."""

    key: str
    status: str  # "completed" | "failed"
    fingerprint: str
    attempts: int = 1
    elapsed_s: float = 0.0
    #: JSON-native row payload (small results live inline).
    payload: Optional[dict] = None
    #: Relative path of a pickled artifact under the run dir.
    artifact: Optional[str] = None
    #: Error record for failed rows: type/message/context.
    error: Optional[dict] = None
    #: Relative path of the replay bundle for failed rows.
    bundle: Optional[str] = None
    timestamp: str = ""
    schema: int = JOURNAL_SCHEMA

    @property
    def completed(self) -> bool:
        return self.status == "completed"


class RunJournal:
    """The append-only journal of one run directory.

    Opening an existing run directory loads its surviving records (the
    resume path); records appended afterwards land in the same file.

    ``shard`` names this writer's private journal file
    (``journal-<shard>.jsonl``) inside the shared run directory — the
    multi-executor/multi-host mode.  A sharded journal only loads its
    own file; :func:`merge_journals` is how shards become one resumable
    journal again.
    """

    def __init__(
        self,
        run_dir: Union[str, os.PathLike],
        shard: Optional[str] = None,
    ) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.shard = shard
        if shard is None:
            self.path = self.run_dir / "journal.jsonl"
        else:
            self.path = self.run_dir / f"journal-{_slug(shard)}.jsonl"
        #: Latest surviving entry per key, in journal order.
        self._entries: dict[str, JournalEntry] = {}
        #: Heartbeat/progress records (obs.heartbeat), in journal order.
        #: Not rows: they never satisfy a resume lookup.
        self.heartbeats: list[dict] = []
        #: Executor/orchestration incident records (``status: "event"``,
        #: e.g. a circuit-breaker degradation).  Not rows either.
        self.events: list[dict] = []
        #: Torn/corrupt lines skipped while loading (diagnostics).
        self.skipped_lines = 0
        self._load()
        self._fh: Optional[io.TextIOWrapper] = None
        #: ``time.monotonic()`` of the last append in this process
        #: (``None`` before the first) — the heartbeat's "journal lag".
        self.last_append: Optional[float] = None

    # ------------------------------------------------------------- loading
    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                kind, value = parse_journal_line(line)
                if kind == "blank":
                    continue
                if kind == "torn":
                    self.skipped_lines += 1
                elif kind == "heartbeat":
                    self.heartbeats.append(value)
                elif kind == "event":
                    self.events.append(value)
                else:
                    self._entries[value.key] = value

    # ------------------------------------------------------------ appending
    def _append_line(self, record: dict) -> None:
        if self._fh is None:
            self._fh = self.path.open("a", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.last_append = time.monotonic()

    def _append(self, entry: JournalEntry) -> None:
        self._append_line(asdict(entry))
        self._entries[entry.key] = entry

    def record_heartbeat(self, payload: dict) -> dict:
        """Journal a sweep heartbeat (progress snapshot, not a row).

        Heartbeats share the journal's append durability, so a killed
        sweep's last record shows how far it got; readers route them to
        :attr:`heartbeats` and they never shadow or satisfy a row key.
        """
        record = {
            "status": "heartbeat",
            "schema": JOURNAL_SCHEMA,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            **payload,
        }
        self._append_line(record)
        self.heartbeats.append(record)
        return record

    def record_event(self, kind: str, payload: dict) -> dict:
        """Journal an orchestration incident (not a row, not progress).

        Today's producer is the supervised sweep executor journaling an
        ``executor_degradation``; like heartbeats, events share append
        durability, never satisfy a resume lookup, and survive reload
        (in :attr:`events`) so post-mortems see *how* a run completed,
        not just that it did.
        """
        record = {
            "status": "event",
            "kind": kind,
            "schema": JOURNAL_SCHEMA,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "payload": payload,
        }
        self._append_line(record)
        self.events.append(record)
        return record

    def record_completed(
        self,
        key: str,
        fingerprint: str,
        *,
        payload: Optional[dict] = None,
        artifact_value: Any = None,
        attempts: int = 1,
        elapsed_s: float = 0.0,
    ) -> JournalEntry:
        """Journal a completed row; ``artifact_value`` is pickled durably
        to ``artifacts/`` and referenced by relative path."""
        artifact = None
        if artifact_value is not None:
            artifact = f"artifacts/{_slug(key)}.pkl"
            atomic_write_bytes(
                self.run_dir / artifact,
                pickle.dumps(artifact_value, protocol=pickle.HIGHEST_PROTOCOL),
            )
        entry = JournalEntry(
            key=key,
            status="completed",
            fingerprint=fingerprint,
            attempts=attempts,
            elapsed_s=round(elapsed_s, 6),
            payload=payload,
            artifact=artifact,
            timestamp=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        )
        self._append(entry)
        return entry

    def record_failed(
        self,
        key: str,
        fingerprint: str,
        *,
        error: dict,
        attempts: int = 1,
        elapsed_s: float = 0.0,
        bundle: Optional[str] = None,
    ) -> JournalEntry:
        entry = JournalEntry(
            key=key,
            status="failed",
            fingerprint=fingerprint,
            attempts=attempts,
            elapsed_s=round(elapsed_s, 6),
            error=error,
            bundle=bundle,
            timestamp=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        )
        self._append(entry)
        return entry

    # -------------------------------------------------------------- lookup
    def entries(self) -> list[JournalEntry]:
        return list(self._entries.values())

    def entry(self, key: str) -> Optional[JournalEntry]:
        return self._entries.get(key)

    def completed(self, key: str, fingerprint: str) -> Optional[JournalEntry]:
        """The journaled completed entry for ``key`` — only if its inputs
        fingerprint matches the current request."""
        entry = self._entries.get(key)
        if entry is not None and entry.completed and entry.fingerprint == fingerprint:
            return entry
        return None

    def load_artifact(self, entry: Optional[JournalEntry]) -> Any:
        """Unpickle an entry's artifact; ``None`` on any damage (the row
        is then recomputed — a corrupt sidecar must never abort resume)."""
        if entry is None or entry.artifact is None:
            return None
        try:
            with (self.run_dir / entry.artifact).open("rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None

    # --------------------------------------------------------------- paths
    def bundle_path(self, key: str) -> Path:
        """Where a replay bundle for ``key`` belongs (relative: bundles/)."""
        return self.run_dir / "bundles" / f"{_slug(key)}.json"

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_journal(
    run_dir: Union[str, os.PathLike, None],
    shard: Optional[str] = None,
) -> Optional[RunJournal]:
    """CLI convenience: a journal for ``--resume DIR``, or ``None``.

    Rejects a path that exists but is not a directory (a typo'd file
    path would otherwise shadow every row).  ``shard`` (the CLI's
    ``--shard``) routes this writer to ``journal-<shard>.jsonl``.
    """
    if run_dir is None:
        if shard is not None:
            raise ConfigError(
                "--shard requires a run directory (--resume DIR)",
                shard=shard,
            )
        return None
    path = Path(run_dir)
    if path.exists() and not path.is_dir():
        raise ConfigError(
            f"--resume target {str(path)!r} exists and is not a directory",
            run_dir=str(path),
        )
    return RunJournal(path, shard=shard)


# ------------------------------------------------------------- shard merge
@dataclass
class MergeReport:
    """What :func:`merge_journals` did, for humans and for CI logs."""

    output: str
    shards: list[str] = field(default_factory=list)
    rows_merged: int = 0
    duplicates_dropped: int = 0
    conflicts: int = 0
    torn_lines: int = 0
    heartbeats_dropped: int = 0
    events_kept: int = 0
    artifacts_copied: int = 0
    artifacts_missing: int = 0
    spans_merged: int = 0
    wall_spans_kept: int = 0

    def as_dict(self) -> dict:
        return asdict(self)

    def format(self) -> str:
        lines = [
            f"merged {len(self.shards)} shard journal(s) -> {self.output}",
            f"  rows:       {self.rows_merged} "
            f"({self.duplicates_dropped} duplicate(s) dropped, "
            f"{self.conflicts} conflict(s) resolved latest-wins)",
            f"  tolerated:  {self.torn_lines} torn line(s), "
            f"{self.heartbeats_dropped} heartbeat(s) dropped",
            f"  events:     {self.events_kept} kept",
            f"  artifacts:  {self.artifacts_copied} copied, "
            f"{self.artifacts_missing} missing (rows recompute on resume)",
        ]
        if self.spans_merged or self.wall_spans_kept:
            lines.append(
                f"  spans:      {self.spans_merged} deterministic merged, "
                f"{self.wall_spans_kept} wall-clock kept"
            )
        return "\n".join(lines)


def _shard_journal_files(shard: Union[str, os.PathLike]) -> list[Path]:
    """Journal files named by one merge input (a file or a run dir)."""
    path = Path(shard)
    if path.is_file():
        return [path]
    if path.is_dir():
        files = shard_journal_paths(path)
        if not files:
            raise ConfigError(
                f"run directory {str(path)!r} contains no journal files",
                shard=str(path),
            )
        return files
    raise ConfigError(
        f"journal shard {str(path)!r} does not exist", shard=str(path)
    )


def merge_journals(
    shards: Sequence[Union[str, os.PathLike]],
    output_dir: Union[str, os.PathLike],
    *,
    dry_run: bool = False,
) -> MergeReport:
    """Merge shard journals into one resume-equivalent run directory.

    Each input may be a journal *file* or a *run directory* (all of the
    directory's journals — primary plus shards — are taken).  Rows are
    content-addressed, so the merge is a pure fold:

    * the same ``(key, fingerprint)`` appearing in several shards is one
      row — duplicates are dropped, and a ``completed`` record beats a
      ``failed`` one (a row that failed on one host but completed on
      another *is* completed);
    * the same key with a *different* fingerprint means the shards were
      run with different inputs — counted as a conflict, latest shard
      wins (and a resume with either fingerprint recomputes the loser,
      so a conflicted merge can never serve a wrong row);
    * heartbeats are per-shard progress noise and are dropped; events
      (executor degradations etc.) are part of the run's history and are
      kept; torn lines are tolerated exactly as on resume.

    Referenced artifacts and bundles are copied from each winning row's
    shard directory into the output run directory; a missing artifact is
    tolerated (the row recomputes on resume, same as local damage).

    The output directory must not already contain a primary journal —
    merging over a live run would silently shadow its rows.

    ``dry_run=True`` performs the whole fold — the same winners, the
    same conflict/duplicate/torn accounting, including checking which
    referenced artifacts exist — but writes nothing: no output
    directory, no merged journal, no copied artifacts.  The returned
    :class:`MergeReport` is what the real merge *would* report.
    """
    if not shards:
        raise ConfigError("journal merge needs at least one shard")
    output_dir = Path(output_dir)
    if not dry_run and (output_dir / "journal.jsonl").exists():
        raise ConfigError(
            f"output directory {str(output_dir)!r} already contains "
            "journal.jsonl; refusing to merge over an existing journal",
            output=str(output_dir),
        )

    report = MergeReport(output=str(output_dir))
    winners: dict[str, tuple[JournalEntry, Path]] = {}
    order: list[str] = []  # first-seen key order, for a stable output
    events: list[dict] = []
    for shard in shards:
        for journal_file in _shard_journal_files(shard):
            report.shards.append(str(journal_file))
            src_dir = journal_file.parent
            with journal_file.open("r", encoding="utf-8", errors="replace") as fh:
                for line in fh:
                    kind, value = parse_journal_line(line)
                    if kind == "blank":
                        continue
                    if kind == "torn":
                        report.torn_lines += 1
                    elif kind == "heartbeat":
                        report.heartbeats_dropped += 1
                    elif kind == "event":
                        events.append(value)
                    else:
                        _merge_row(winners, order, value, src_dir, report)

    if dry_run:
        for key in order:
            entry, src_dir = winners[key]
            for ref in (entry.artifact, entry.bundle):
                if ref is None:
                    continue
                if (src_dir / ref).exists():
                    report.artifacts_copied += 1
                else:
                    report.artifacts_missing += 1
            report.rows_merged += 1
        report.events_kept = len(events)
        _merge_spans(shards, output_dir, report, dry_run=True)
        return report

    with RunJournal(output_dir) as merged:
        for key in order:
            entry, src_dir = winners[key]
            for ref in (entry.artifact, entry.bundle):
                if ref is None:
                    continue
                source = src_dir / ref
                destination = merged.run_dir / ref
                if not source.exists():
                    report.artifacts_missing += 1
                    continue
                if source.resolve() != destination.resolve():
                    destination.parent.mkdir(parents=True, exist_ok=True)
                    shutil.copyfile(source, destination)
                report.artifacts_copied += 1
            merged._append(entry)
            report.rows_merged += 1
        for event in events:
            merged._append_line(event)
            merged.events.append(event)
            report.events_kept += 1
    _merge_spans(shards, output_dir, report, dry_run=False)
    return report


def _merge_spans(
    shards: Sequence[Union[str, os.PathLike]],
    output_dir: Path,
    report: MergeReport,
    *,
    dry_run: bool,
) -> None:
    """Fold per-shard span files into the canonical merged pair.

    Span ids are content fingerprints, so like journal rows the fold is
    a pure dedupe: the driver's spans and a worker shard's copies of the
    same task collapse into one record.  Deterministic spans land in
    ``spans.jsonl`` in canonical order (byte-identical across equivalent
    runs); wall-clock spans are run history, kept in ``spans-wall.jsonl``.
    """
    from repro.obs.spans import (
        dedupe_spans,
        read_spans,
        span_files,
        split_spans,
        write_canonical_spans,
    )

    spans = dedupe_spans(
        span
        for shard in shards
        if Path(shard).is_dir()
        for path in span_files(Path(shard))
        for span in read_spans(path)
    )
    if not spans:
        return
    det, wall = split_spans(spans)
    report.spans_merged = len(det)
    report.wall_spans_kept = len(wall)
    if not dry_run:
        write_canonical_spans(output_dir, spans)


def _merge_row(
    winners: dict,
    order: list,
    entry: JournalEntry,
    src_dir: Path,
    report: MergeReport,
) -> None:
    """Fold one shard row into the winners map (see merge_journals)."""
    current = winners.get(entry.key)
    if current is None:
        winners[entry.key] = (entry, src_dir)
        order.append(entry.key)
        return
    existing, _ = current
    if existing.fingerprint != entry.fingerprint:
        report.conflicts += 1
        winners[entry.key] = (entry, src_dir)  # latest shard wins
        return
    if entry.completed and not existing.completed:
        winners[entry.key] = (entry, src_dir)  # completed beats failed
    report.duplicates_dropped += 1


__all__ = [
    "JOURNAL_SCHEMA",
    "JournalEntry",
    "MergeReport",
    "RunJournal",
    "merge_journals",
    "open_journal",
    "options_fingerprint",
    "parse_journal_line",
    "shard_journal_paths",
]
