"""Append-only JSONL run journal: crash-safe sweep progress + resume.

A sweep that dies — SIGKILL, OOM, power loss — must not throw away its
completed rows.  Every sweep driver (Table 2, ablations, Figure 6,
reassignment, chaos) can attach a :class:`RunJournal` rooted at a *run
directory*::

    run-dir/
        journal.jsonl          one JSON record per completed/failed row,
                               appended and fsync'd before the sweep moves on
        artifacts/<key>.pkl    pickled row results too rich for JSON
                               (e.g. a full BenchmarkEvaluation)
        bundles/<key>.json     replay bundles for unrecoverable failures

The journal is *content-addressed*: each record carries a fingerprint of
every input that determines the row's value (via
:func:`repro.perf.fingerprint.fingerprint`).  ``--resume <run-dir>``
reuses a journaled row only when its key **and** fingerprint match the
current request, so resuming after editing options recomputes rather
than serving stale rows — and a resumed table is bit-identical to an
uninterrupted run, because the reused rows *are* the original results.

Append durability: each record is one ``write()`` of one line followed
by ``flush`` + ``fsync``.  A crash mid-append leaves at most one torn
trailing line, which the reader detects and ignores (the row is simply
recomputed on resume).
"""

from __future__ import annotations

import io
import json
import os
import pickle
import re
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Optional, Union

from repro.errors import ConfigError
from repro.robustness.atomicio import atomic_write_bytes

#: Schema version stamped on every journal record.
JOURNAL_SCHEMA = 1

_SLUG_RE = re.compile(r"[^A-Za-z0-9._-]+")


def _slug(key: str) -> str:
    """Filesystem-safe name for a row key."""
    return _SLUG_RE.sub("_", key).strip("_") or "row"


def options_fingerprint(options: Any) -> str:
    """Fingerprint of every :class:`EvaluationOptions` field that can
    change a row's *value*.

    Excluded on purpose: ``jobs`` (parallel runs are bit-identical to
    serial), ``cache`` (a cache hit returns the same artifact), and
    ``retry`` (retries only repeat the same deterministic computation).
    Included: the fault plan — an injected fault absolutely changes the
    outcome, so a chaos journal can never satisfy a clean resume.
    """
    from repro.perf.fingerprint import fingerprint

    return fingerprint(
        (
            "journal-options/v1",
            options.trace_length,
            options.trace_seed,
            options.partitioner,
            options.single_config,
            options.dual_config,
            options.dual_assignment,
            options.compiler,
            options.validate,
            options.self_check,
            options.cycle_budget,
            options.fault_plan,
        )
    )


@dataclass
class JournalEntry:
    """One journaled row outcome."""

    key: str
    status: str  # "completed" | "failed"
    fingerprint: str
    attempts: int = 1
    elapsed_s: float = 0.0
    #: JSON-native row payload (small results live inline).
    payload: Optional[dict] = None
    #: Relative path of a pickled artifact under the run dir.
    artifact: Optional[str] = None
    #: Error record for failed rows: type/message/context.
    error: Optional[dict] = None
    #: Relative path of the replay bundle for failed rows.
    bundle: Optional[str] = None
    timestamp: str = ""
    schema: int = JOURNAL_SCHEMA

    @property
    def completed(self) -> bool:
        return self.status == "completed"


class RunJournal:
    """The append-only journal of one run directory.

    Opening an existing run directory loads its surviving records (the
    resume path); records appended afterwards land in the same file.
    """

    def __init__(self, run_dir: Union[str, os.PathLike]) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.run_dir / "journal.jsonl"
        #: Latest surviving entry per key, in journal order.
        self._entries: dict[str, JournalEntry] = {}
        #: Heartbeat/progress records (obs.heartbeat), in journal order.
        #: Not rows: they never satisfy a resume lookup.
        self.heartbeats: list[dict] = []
        #: Torn/corrupt lines skipped while loading (diagnostics).
        self.skipped_lines = 0
        self._load()
        self._fh: Optional[io.TextIOWrapper] = None
        #: ``time.monotonic()`` of the last append in this process
        #: (``None`` before the first) — the heartbeat's "journal lag".
        self.last_append: Optional[float] = None

    # ------------------------------------------------------------- loading
    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    if (
                        isinstance(record, dict)
                        and record.get("status") == "heartbeat"
                    ):
                        self.heartbeats.append(record)
                        continue
                    entry = JournalEntry(
                        **{
                            k: v
                            for k, v in record.items()
                            if k in JournalEntry.__dataclass_fields__
                        }
                    )
                    if not entry.key or entry.status not in ("completed", "failed"):
                        raise ValueError("incomplete journal record")
                except (ValueError, TypeError):
                    # A torn tail from a killed writer (or hand-edited
                    # garbage): the row is recomputed, never trusted.
                    self.skipped_lines += 1
                    continue
                self._entries[entry.key] = entry

    # ------------------------------------------------------------ appending
    def _append_line(self, record: dict) -> None:
        if self._fh is None:
            self._fh = self.path.open("a", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.last_append = time.monotonic()

    def _append(self, entry: JournalEntry) -> None:
        self._append_line(asdict(entry))
        self._entries[entry.key] = entry

    def record_heartbeat(self, payload: dict) -> dict:
        """Journal a sweep heartbeat (progress snapshot, not a row).

        Heartbeats share the journal's append durability, so a killed
        sweep's last record shows how far it got; readers route them to
        :attr:`heartbeats` and they never shadow or satisfy a row key.
        """
        record = {
            "status": "heartbeat",
            "schema": JOURNAL_SCHEMA,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            **payload,
        }
        self._append_line(record)
        self.heartbeats.append(record)
        return record

    def record_completed(
        self,
        key: str,
        fingerprint: str,
        *,
        payload: Optional[dict] = None,
        artifact_value: Any = None,
        attempts: int = 1,
        elapsed_s: float = 0.0,
    ) -> JournalEntry:
        """Journal a completed row; ``artifact_value`` is pickled durably
        to ``artifacts/`` and referenced by relative path."""
        artifact = None
        if artifact_value is not None:
            artifact = f"artifacts/{_slug(key)}.pkl"
            atomic_write_bytes(
                self.run_dir / artifact,
                pickle.dumps(artifact_value, protocol=pickle.HIGHEST_PROTOCOL),
            )
        entry = JournalEntry(
            key=key,
            status="completed",
            fingerprint=fingerprint,
            attempts=attempts,
            elapsed_s=round(elapsed_s, 6),
            payload=payload,
            artifact=artifact,
            timestamp=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        )
        self._append(entry)
        return entry

    def record_failed(
        self,
        key: str,
        fingerprint: str,
        *,
        error: dict,
        attempts: int = 1,
        elapsed_s: float = 0.0,
        bundle: Optional[str] = None,
    ) -> JournalEntry:
        entry = JournalEntry(
            key=key,
            status="failed",
            fingerprint=fingerprint,
            attempts=attempts,
            elapsed_s=round(elapsed_s, 6),
            error=error,
            bundle=bundle,
            timestamp=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        )
        self._append(entry)
        return entry

    # -------------------------------------------------------------- lookup
    def entries(self) -> list[JournalEntry]:
        return list(self._entries.values())

    def entry(self, key: str) -> Optional[JournalEntry]:
        return self._entries.get(key)

    def completed(self, key: str, fingerprint: str) -> Optional[JournalEntry]:
        """The journaled completed entry for ``key`` — only if its inputs
        fingerprint matches the current request."""
        entry = self._entries.get(key)
        if entry is not None and entry.completed and entry.fingerprint == fingerprint:
            return entry
        return None

    def load_artifact(self, entry: Optional[JournalEntry]) -> Any:
        """Unpickle an entry's artifact; ``None`` on any damage (the row
        is then recomputed — a corrupt sidecar must never abort resume)."""
        if entry is None or entry.artifact is None:
            return None
        try:
            with (self.run_dir / entry.artifact).open("rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None

    # --------------------------------------------------------------- paths
    def bundle_path(self, key: str) -> Path:
        """Where a replay bundle for ``key`` belongs (relative: bundles/)."""
        return self.run_dir / "bundles" / f"{_slug(key)}.json"

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_journal(run_dir: Union[str, os.PathLike, None]) -> Optional[RunJournal]:
    """CLI convenience: a journal for ``--resume DIR``, or ``None``.

    Rejects a path that exists but is not a directory (a typo'd file
    path would otherwise shadow every row).
    """
    if run_dir is None:
        return None
    path = Path(run_dir)
    if path.exists() and not path.is_dir():
        raise ConfigError(
            f"--resume target {str(path)!r} exists and is not a directory",
            run_dir=str(path),
        )
    return RunJournal(path)


__all__ = [
    "JOURNAL_SCHEMA",
    "JournalEntry",
    "RunJournal",
    "open_journal",
    "options_fingerprint",
]
