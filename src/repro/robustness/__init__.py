"""Robustness substrate: validation, invariants, fault injection, checkpoints.

The headline numbers of the reproduction are only as trustworthy as the
simulator's failure behaviour.  This package makes failures *loud and
typed* instead of silent or hanging:

* :mod:`repro.robustness.validate` — pre-simulation validation of
  configurations, register assignments, machine programs, and traces;
* :mod:`repro.robustness.invariants` — the opt-in per-cycle invariant
  checker behind ``ProcessorConfig.self_check`` (observes, never perturbs);
* :mod:`repro.robustness.faultinject` — composable fault injectors used
  by the test matrix to prove every fault surfaces as a typed
  :class:`~repro.errors.ReproError`;
* :mod:`repro.robustness.checkpoint` — snapshot/resume for long
  simulations.
"""

from repro.robustness.checkpoint import (
    SimulationCheckpoint,
    restore,
    run_with_checkpoints,
    snapshot,
)
from repro.robustness.faultinject import (
    DropPendingEvents,
    DropTransferEntry,
    DuplicateTransferEntry,
    StuckFunctionalUnit,
    corrupt_operand,
    truncate_trace,
)
from repro.robustness.invariants import InvariantChecker
from repro.robustness.validate import (
    validate_assignment,
    validate_trace_length,
    validate_config,
    validate_machine_program,
    validate_run,
    validate_trace,
)

__all__ = [
    "SimulationCheckpoint",
    "snapshot",
    "restore",
    "run_with_checkpoints",
    "DropPendingEvents",
    "DropTransferEntry",
    "DuplicateTransferEntry",
    "StuckFunctionalUnit",
    "corrupt_operand",
    "truncate_trace",
    "InvariantChecker",
    "validate_assignment",
    "validate_config",
    "validate_machine_program",
    "validate_run",
    "validate_trace",
    "validate_trace_length",
]
