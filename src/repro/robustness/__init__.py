"""Robustness substrate: validation, invariants, fault injection, checkpoints.

The headline numbers of the reproduction are only as trustworthy as the
simulator's failure behaviour.  This package makes failures *loud and
typed* instead of silent or hanging:

* :mod:`repro.robustness.validate` — pre-simulation validation of
  configurations, register assignments, machine programs, and traces;
* :mod:`repro.robustness.invariants` — the opt-in per-cycle invariant
  checker behind ``ProcessorConfig.self_check`` (observes, never perturbs);
* :mod:`repro.robustness.faultinject` — composable fault injectors used
  by the test matrix to prove every fault surfaces as a typed
  :class:`~repro.errors.ReproError`;
* :mod:`repro.robustness.checkpoint` — snapshot/resume for long
  simulations.

PR 3 adds the *resilient sweep orchestration* layer on top:

* :mod:`repro.robustness.retry` — deterministic seeded retry policy and
  transient/permanent failure classification;
* :mod:`repro.robustness.journal` — append-only JSONL run journal behind
  ``--resume`` (crash-safe sweeps, bit-identical resumed tables);
* :mod:`repro.robustness.replay` — self-contained replay bundles and the
  ``repro replay`` verifier (imported lazily: it needs the experiments
  layer, which imports this package);
* :mod:`repro.robustness.chaos` — the seeded chaos soak harness behind
  ``repro chaos`` (also lazily imported);
* :mod:`repro.robustness.atomicio` — atomic, fsync'd file writes shared
  by the journal, bundles, reports, and the bench harness.
"""

from repro.robustness.atomicio import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from repro.robustness.checkpoint import (
    SimulationCheckpoint,
    restore,
    run_with_checkpoints,
    snapshot,
)
from repro.robustness.faultinject import (
    DropPendingEvents,
    DropTransferEntry,
    DuplicateTransferEntry,
    FaultPlan,
    FaultSpec,
    StuckFunctionalUnit,
    corrupt_operand,
    truncate_trace,
)
from repro.robustness.faultinject import WORKER_FAULT_KINDS
from repro.robustness.journal import (
    JournalEntry,
    MergeReport,
    RunJournal,
    merge_journals,
    options_fingerprint,
    parse_journal_line,
    shard_journal_paths,
)
from repro.robustness.retry import (
    AttemptRecord,
    RetryOutcome,
    RetryPolicy,
    backoff_schedule,
    classify_error,
    run_with_retry,
)
from repro.robustness.invariants import InvariantChecker
from repro.robustness.validate import (
    validate_assignment,
    validate_trace_length,
    validate_config,
    validate_machine_program,
    validate_run,
    validate_trace,
)

__all__ = [
    "SimulationCheckpoint",
    "snapshot",
    "restore",
    "run_with_checkpoints",
    "DropPendingEvents",
    "DropTransferEntry",
    "DuplicateTransferEntry",
    "FaultPlan",
    "FaultSpec",
    "StuckFunctionalUnit",
    "corrupt_operand",
    "truncate_trace",
    "InvariantChecker",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "JournalEntry",
    "MergeReport",
    "RunJournal",
    "WORKER_FAULT_KINDS",
    "merge_journals",
    "options_fingerprint",
    "parse_journal_line",
    "shard_journal_paths",
    "AttemptRecord",
    "RetryOutcome",
    "RetryPolicy",
    "backoff_schedule",
    "classify_error",
    "run_with_retry",
    "validate_assignment",
    "validate_config",
    "validate_machine_program",
    "validate_run",
    "validate_trace",
    "validate_trace_length",
]
