"""Opt-in per-cycle invariant checker (``ProcessorConfig.self_check``).

When enabled, the processor calls into an :class:`InvariantChecker` at
well-defined points of every cycle.  The checker *observes* model state
and raises :class:`~repro.errors.InvariantViolation` on corruption; it
never mutates anything, so self-check-on and self-check-off runs produce
bit-identical cycle counts.

Invariants map onto the paper's Section 2.1/3 structures:

* **transfer buffers** — occupancy never exceeds capacity, and every
  entry is owned by an instruction still in flight (a dangling entry
  means a squash or free was lost);
* **master/slave protocol** — a master consuming a forwarded operand
  finds the entry in its operand buffer at issue; a slave consuming a
  forwarded result finds the entry in its result buffer at issue;
* **dispatch queues** — free-entry accounting stays within capacity;
* **retirement** — in-order: retired sequence numbers are strictly
  monotone, and the reorder buffer itself stays sorted;
* **register ownership** — no copy writes an architectural register its
  cluster does not own under the current assignment (a cross-cluster
  write without a transfer).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uarch.processor import Processor, _Cluster
    from repro.uarch.uop import Uop


class InvariantChecker:
    """Observational self-checker attached to one :class:`Processor`."""

    def __init__(self, processor: "Processor") -> None:
        self.processor = processor
        self._last_retired_seq = -1
        self.checks_run = 0

    # ------------------------------------------------------------- helpers
    def _fail(self, message: str, *, cycle: int, **ctx) -> None:
        raise InvariantViolation(
            message,
            cycle=cycle,
            diagnostics=self.processor.diagnostic_dump(),
            **ctx,
        )

    # ------------------------------------------------------------ per-cycle
    def check_cycle(self, cycle: int) -> None:
        """Structural invariants checked once per simulated cycle."""
        self.checks_run += 1
        processor = self.processor
        in_flight = {entry.seq for entry in processor._rob}
        prev_seq = -1
        for entry in processor._rob:
            if entry.seq <= prev_seq:
                self._fail(
                    "reorder buffer out of program order",
                    cycle=cycle,
                    seq=entry.seq,
                    previous=prev_seq,
                )
            prev_seq = entry.seq
        for cluster in processor.clusters:
            capacity = cluster.config.dispatch_queue_entries
            if not 0 <= cluster.queue_free <= capacity:
                self._fail(
                    "dispatch-queue free-entry accounting out of range",
                    cycle=cycle,
                    cluster=cluster.index,
                    queue_free=cluster.queue_free,
                    capacity=capacity,
                )
            for buffer in (cluster.operand_buffer, cluster.result_buffer):
                if buffer.occupancy > buffer.capacity:
                    self._fail(
                        f"{buffer.name} occupancy exceeds capacity",
                        cycle=cycle,
                        cluster=cluster.index,
                        occupancy=buffer.occupancy,
                        capacity=buffer.capacity,
                    )
                for owner in buffer.entries:
                    if owner not in in_flight:
                        self._fail(
                            f"{buffer.name} entry owned by an instruction "
                            "not in flight",
                            cycle=cycle,
                            cluster=cluster.index,
                            seq=owner,
                        )

    # ------------------------------------------------------------- at issue
    def check_issue(
        self, uop: "Uop", cluster: "_Cluster", cycle: int, phase: int
    ) -> None:
        """Transfer-protocol invariants at the moment a copy issues.

        Called before the issue mutates any state, with the same ``phase``
        the issue logic uses (phase 1 = a scenario-5 slave's result leg).
        """
        from repro.uarch.uop import Role

        if (
            uop.role is Role.MASTER
            and uop.partner is not None
            and any(h.needs_operand_entry for h in uop.entry.uops[1:])
            and uop.seq not in cluster.operand_buffer.entries
        ):
            self._fail(
                "master issued but its forwarded operand is missing from the "
                "operand transfer buffer",
                cycle=cycle,
                cluster=cluster.index,
                seq=uop.seq,
                instruction=uop.entry.dyn.instr.format(),
            )
        if (
            uop.role is Role.SLAVE
            and (uop.forwards_result_only or phase == 1)
            and uop.seq not in cluster.result_buffer.entries
        ):
            self._fail(
                "slave issued but the forwarded result is missing from the "
                "result transfer buffer",
                cycle=cycle,
                cluster=cluster.index,
                seq=uop.seq,
                instruction=uop.entry.dyn.instr.format(),
            )

    # --------------------------------------------------------- at writeback
    def check_writeback(self, uop: "Uop", cycle: int) -> None:
        """No copy writes a register its cluster does not own."""
        if not uop.writes_dest:
            return
        dest = uop.entry.dyn.instr.effective_dest
        if dest is None:
            return
        owners = self.processor.assignment.clusters_of(dest)
        if uop.cluster not in owners:
            self._fail(
                "cross-cluster register write without a transfer: cluster "
                f"does not own {dest.name}",
                cycle=cycle,
                cluster=uop.cluster,
                seq=uop.seq,
                register=dest.name,
                owners=sorted(owners),
            )

    # ------------------------------------------------------------ at retire
    def check_retire(self, seq: int, cycle: int) -> None:
        """Retirement must be strictly monotone in program order."""
        if seq <= self._last_retired_seq:
            self._fail(
                "retire order not monotone",
                cycle=cycle,
                seq=seq,
                previously_retired=self._last_retired_seq,
            )
        self._last_retired_seq = seq
