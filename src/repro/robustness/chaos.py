"""Seeded chaos soak harness: prove the resilience story under fire.

``repro chaos`` runs a sequence of Table 2 sweeps, each under a
*randomized but seeded* fault-injection schedule (a
:class:`~repro.robustness.faultinject.FaultPlan` drawn from a
per-round PRNG), and asserts the orchestration contract end to end:

* every induced failure is either retried to success (transient faults
  clear between attempts) or degrades into a
  :class:`~repro.experiments.harness.BenchmarkFailure` — the sweep
  itself never dies;
* every unrecoverable failure carries a replay bundle on disk, and
  replaying that bundle reproduces the *same* typed error (type and
  message) — verified by actually replaying each one;
* every round's journal is well-formed and every journaled row is
  loadable.

The verdict is a :class:`HealthReport` (JSON on disk, formatted text on
stdout) whose :attr:`~HealthReport.healthy` flag drives the CLI exit
code: ``0`` healthy, ``5`` violations found.  The same seed always
yields the same fault schedules, so a red chaos run in CI is locally
reproducible with one flag.

Speed notes: chaos runs use short traces, a zero-delay retry policy
(determinism comes from the schedule, not wall-clock sleeping), and an
explicit watchdog cycle budget sized to the trace — a fault that wedges
the simulator costs milliseconds, not a watchdog-default eternity.
"""

from __future__ import annotations

import hashlib
import random
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.errors import ConfigError
from repro.robustness.atomicio import atomic_write_json
from repro.robustness.faultinject import (
    HOST_FAULT_KINDS,
    RUNTIME_FAULT_KINDS,
    TRACE_FAULT_KINDS,
    WORKER_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
)
from repro.robustness.retry import RetryPolicy

#: Bump when the health-report layout changes incompatibly.
HEALTH_SCHEMA = 1

#: Parts an evaluation sweeps (mirrors harness.PARTS; imported lazily
#: there to keep this module importable without the experiments layer).
_PARTS = ("single", "dual_none", "dual_local")


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs for one chaos soak.

    The defaults are CI-smoke sized (a couple of benchmarks, short
    traces); a longer soak just raises ``rounds`` / ``trace_length``.
    """

    seed: int = 0
    rounds: int = 3
    benchmarks: tuple[str, ...] = ("compress", "ora")
    trace_length: int = 1000
    #: Worker processes per sweep (chaos exercises the same ``--jobs``
    #: machinery the real sweeps use).
    jobs: int = 1
    #: Fault specs drawn per round (1..max, inclusive).
    max_faults: int = 2
    #: Retry attempts granted per evaluation part.
    max_attempts: int = 3
    #: Inject executor-level worker faults (worker_kill / worker_stall /
    #: worker_partition) against the supervised executor instead of
    #: simulation-level faults.  Worker-fault rounds assert *bit
    #: identity* to a serial reference — a lost worker must not change a
    #: single stat — plus the usual journal-consistency contract.
    worker_faults: bool = False
    #: Inject host-level faults (host_kill / host_stall / host_partition)
    #: against the distributed executor: each round launches real worker
    #: *subprocesses* on localhost, sabotages them at task pickup, and
    #: asserts the same bit-identity and journal contracts as worker
    #: rounds — plus that the per-host journal shards merge cleanly.
    host_faults: bool = False
    #: Worker subprocesses per host-fault round.
    hosts: int = 2

    def __post_init__(self) -> None:
        if self.worker_faults and self.host_faults:
            raise ConfigError(
                "chaos runs one fault family per soak: choose worker_faults "
                "or host_faults, not both"
            )
        if self.host_faults and self.hosts < 2:
            raise ConfigError(
                f"host-fault chaos needs >= 2 worker hosts, got {self.hosts}"
            )
        if self.rounds < 1:
            raise ConfigError(f"chaos rounds must be >= 1, got {self.rounds}")
        if self.max_faults < 1:
            raise ConfigError(
                f"chaos max_faults must be >= 1, got {self.max_faults}"
            )
        if self.trace_length < 100:
            raise ConfigError(
                f"chaos trace_length must be >= 100, got {self.trace_length}"
            )
        if not self.benchmarks:
            raise ConfigError("chaos needs at least one benchmark")


def _round_rng(
    seed: int, round_index: int, salt: str = "chaos"
) -> random.Random:
    digest = hashlib.sha256(f"{salt}|{seed}|{round_index}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def random_fault_plan(
    rng: random.Random,
    benchmarks: tuple[str, ...],
    trace_length: int,
    max_faults: int,
) -> FaultPlan:
    """Draw a seeded fault schedule for one chaos round.

    Faults target a random benchmark and (sometimes) a specific
    evaluation part, fire at a random cycle inside the run, and are
    transient (``clear_after`` 1–2) or persistent with equal-ish odds —
    so every round exercises both the retry path and the
    degrade-with-bundle path.
    """
    specs = []
    for _ in range(rng.randint(1, max_faults)):
        kind = rng.choice(RUNTIME_FAULT_KINDS + TRACE_FAULT_KINDS)
        if kind in TRACE_FAULT_KINDS:
            at = rng.randint(trace_length // 4, max(2, trace_length - 2))
        else:
            at = rng.randint(50, trace_length * 4)
        specs.append(
            FaultSpec(
                kind=kind,
                benchmark=rng.choice(benchmarks),
                part=rng.choice((None,) + _PARTS),
                at_cycle=at,
                cluster=rng.randint(0, 1),
                buffer=rng.choice(("operand", "duplicate")),
                clear_after=rng.choice((1, 2, None)),
            )
        )
    return FaultPlan(specs=tuple(specs))


def random_worker_fault_plan(
    rng: random.Random,
    benchmarks: tuple[str, ...],
    max_faults: int,
) -> FaultPlan:
    """Draw a seeded executor-level fault schedule for one worker round.

    Kinds cover the three ways a sweep loses work: a killed worker
    (SIGKILL at task pickup), a wedged worker (stalls until the deadline
    puts it down), and a partitioned worker (computes the result, then
    drops it).  Mostly transient (``clear_after=1``: the re-dispatch
    goes through clean), occasionally persistent (``None``: the task
    keeps dying until the circuit breaker degrades the sweep to serial)
    — both paths must end bit-identical to the serial reference.
    """
    specs = []
    for _ in range(rng.randint(1, max_faults)):
        specs.append(
            FaultSpec(
                kind=rng.choice(WORKER_FAULT_KINDS),
                benchmark=rng.choice(benchmarks),
                part=rng.choice((None,) + _PARTS),
                clear_after=rng.choice((1, 1, 2, None)),
            )
        )
    return FaultPlan(specs=tuple(specs))


def random_host_fault_plan(
    rng: random.Random,
    benchmarks: tuple[str, ...],
    max_faults: int,
) -> FaultPlan:
    """Draw a seeded host-level fault schedule for one distributed round.

    The host mirror of :func:`random_worker_fault_plan`: a killed host
    process (the TCP connection drops), a wedged host (the coordinator's
    task deadline expires its lease), and a partitioned host (drops the
    socket mid-task — the work may be done and journaled, but the result
    never crosses the network, so dedup must catch any late copy).
    Mostly transient (``clear_after=1``: the re-dispatch lands on a
    surviving host), occasionally persistent (``None``: the task takes
    down host after host until the coordinator's cascade falls back to
    local execution) — every path must end bit-identical to serial.
    Faults key on ``(benchmark, part, dispatch)``, never on a host name,
    so the schedule is deterministic regardless of which host happens to
    lease a task first.
    """
    specs = []
    for _ in range(rng.randint(1, max_faults)):
        specs.append(
            FaultSpec(
                kind=rng.choice(HOST_FAULT_KINDS),
                benchmark=rng.choice(benchmarks),
                part=rng.choice((None,) + _PARTS),
                clear_after=rng.choice((1, 1, 2, None)),
            )
        )
    return FaultPlan(specs=tuple(specs))


@dataclass
class RoundReport:
    """What one chaos round did and whether the contract held."""

    round_index: int
    fault_plan: dict
    completed_rows: int
    failed_rows: int
    #: Rows that needed more than one attempt on some part and still
    #: completed — the retry policy visibly earning its keep.
    retried_to_success: int
    #: Bundles written for failed rows, all verified by replay.
    bundles_verified: int
    elapsed_s: float
    #: Contract violations ("" when none): failures without bundles,
    #: bundles that did not reproduce, unloadable journal rows.
    violations: list[str] = field(default_factory=list)
    #: Which harness produced the round: ``"fault-injection"``
    #: (simulation-level faults), ``"worker-faults"`` (executor-level),
    #: or ``"host-faults"`` (distributed, host-level).
    mode: str = "fault-injection"

    @property
    def healthy(self) -> bool:
        return not self.violations


@dataclass
class HealthReport:
    """The chaos soak's final verdict."""

    seed: int
    rounds: list[RoundReport]
    elapsed_s: float
    #: Which harness produced the soak: ``"fault-injection"``,
    #: ``"worker-faults"``, or ``"host-faults"``.
    mode: str = "fault-injection"
    #: The full :class:`ChaosConfig` as primitives.  Together with
    #: ``seed`` (and each round's recorded fault plan) this makes a
    #: failing round reproducible from the report alone: rebuild
    #: ``ChaosConfig(**config)`` and rerun — the same seeded PRNG draws
    #: the same executor/host fault schedules.
    config: dict = field(default_factory=dict)
    schema: int = HEALTH_SCHEMA

    @property
    def healthy(self) -> bool:
        return all(r.healthy for r in self.rounds)

    @property
    def exit_code(self) -> int:
        return 0 if self.healthy else 5

    def as_dict(self) -> dict:
        return {
            "schema": self.schema,
            "seed": self.seed,
            "mode": self.mode,
            "config": self.config,
            "healthy": self.healthy,
            "elapsed_s": round(self.elapsed_s, 3),
            "rounds": [asdict(r) for r in self.rounds],
        }

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        atomic_write_json(path, self.as_dict())
        return path

    def format(self) -> str:
        verdict = "HEALTHY" if self.healthy else "UNHEALTHY"
        lines = [
            f"chaos soak: seed={self.seed} rounds={len(self.rounds)} "
            f"elapsed={self.elapsed_s:.1f}s -> {verdict}",
            f"{'round':>5} {'faults':>6} {'rows':>5} {'failed':>6} "
            f"{'retried':>7} {'bundles':>7}  violations",
        ]
        for r in self.rounds:
            n_faults = len(r.fault_plan.get("specs", ()))
            lines.append(
                f"{r.round_index:>5} {n_faults:>6} {r.completed_rows:>5} "
                f"{r.failed_rows:>6} {r.retried_to_success:>7} "
                f"{r.bundles_verified:>7}  "
                + ("; ".join(r.violations) if r.violations else "-")
            )
        return "\n".join(lines)


def _run_round(
    config: ChaosConfig, round_index: int, run_dir: Path
) -> RoundReport:
    from repro.experiments.harness import EvaluationOptions
    from repro.experiments.table2 import run_table2
    from repro.robustness.journal import RunJournal
    from repro.robustness.replay import replay_file

    rng = _round_rng(config.seed, round_index)
    plan = random_fault_plan(
        rng, config.benchmarks, config.trace_length, config.max_faults
    )
    options = EvaluationOptions(
        trace_length=config.trace_length,
        self_check=True,
        # A wedged simulation must die at watchdog speed, not default
        # budget speed: chaos replays failures, so a generous budget
        # would be paid several times over.
        cycle_budget=config.trace_length * 30 + 10_000,
        jobs=config.jobs,
        retry=RetryPolicy(
            max_attempts=config.max_attempts,
            base_delay=0.0,
            seed=config.seed,
        ),
        fault_plan=plan,
    )
    round_dir = run_dir / f"round-{round_index:02d}"
    start = time.perf_counter()
    journal = RunJournal(round_dir)
    violations: list[str] = []
    try:
        result = run_table2(list(config.benchmarks), options, journal=journal)
    finally:
        journal.close()

    # Contract 1: the sweep completed and accounted for every benchmark.
    accounted = {r.benchmark for r in result.rows}
    accounted.update(f.benchmark for f in result.failures)
    for name in config.benchmarks:
        if name not in accounted:
            violations.append(f"{name}: row neither completed nor degraded")

    # Contract 2: every unrecoverable failure carries a bundle that
    # replays to the same typed error.
    bundles_verified = 0
    for failure in result.failures:
        bundle = failure.context.get("replay_bundle")
        if not bundle:
            violations.append(
                f"{failure.benchmark}: degraded without a replay bundle"
            )
            continue
        verdict = replay_file(bundle)
        if verdict.reproduced:
            bundles_verified += 1
        else:
            violations.append(
                f"{failure.benchmark}: bundle did not reproduce "
                f"(expected {verdict.bundle.error_type}: "
                f"{verdict.bundle.error_message!r}, got "
                f"{verdict.actual_type}: {verdict.actual_message!r})"
            )

    # Contract 3: the journal survived the round — every completed row
    # is re-loadable (what a later --resume would lean on).
    reopened = RunJournal(round_dir)
    retried = 0
    try:
        for entry in reopened.entries():
            if entry.status != "completed":
                continue
            if reopened.load_artifact(entry) is None:
                violations.append(f"{entry.key}: journaled row unloadable")
            if entry.attempts > len(_PARTS):
                retried += 1
    finally:
        reopened.close()

    return RoundReport(
        round_index=round_index,
        fault_plan=plan.as_dict(),
        completed_rows=len(result.rows),
        failed_rows=len(result.failures),
        retried_to_success=retried,
        bundles_verified=bundles_verified,
        elapsed_s=round(time.perf_counter() - start, 3),
        violations=violations,
    )


def _stats_fingerprints(result) -> dict[str, dict[str, str]]:
    """Per-benchmark, per-part ``stats_fingerprint`` map of a Table 2 run
    (the bit-identity currency of the executor chaos contracts)."""
    from repro.perf.fingerprint import fingerprint

    return {
        row.benchmark: {
            part: fingerprint(getattr(row.evaluation, part).stats.as_dict())
            for part in _PARTS
        }
        for row in result.rows
    }


def _run_worker_round(
    config: ChaosConfig, round_index: int, run_dir: Path
) -> RoundReport:
    """One executor-level chaos round: supervised sweep vs serial truth.

    The contract is stricter than the fault-injection rounds': worker
    faults happen *outside* the simulation, so nothing may degrade —
    every benchmark must complete, with every stat bit-identical
    (``stats_fingerprint``) to a serial reference sweep, and the round's
    shard journal must reload with every row loadable.
    """
    from repro.experiments.harness import EvaluationOptions
    from repro.experiments.table2 import run_table2
    from repro.robustness.journal import RunJournal

    rng = _round_rng(config.seed, round_index, salt="chaos-worker")
    plan = random_worker_fault_plan(rng, config.benchmarks, config.max_faults)
    options = EvaluationOptions(
        trace_length=config.trace_length,
        cycle_budget=config.trace_length * 30 + 10_000,
    )
    round_dir = run_dir / f"round-{round_index:02d}"
    start = time.perf_counter()
    violations: list[str] = []

    reference = run_table2(list(config.benchmarks), options)
    if reference.failures:  # pragma: no cover - benchmarks are healthy
        violations.append("serial reference run failed; cannot judge round")
        return RoundReport(
            round_index=round_index,
            fault_plan=plan.as_dict(),
            completed_rows=0,
            failed_rows=len(reference.failures),
            retried_to_success=0,
            bundles_verified=0,
            elapsed_s=round(time.perf_counter() - start, 3),
            violations=violations,
            mode="worker-faults",
        )

    supervised_options = EvaluationOptions(
        trace_length=config.trace_length,
        cycle_budget=config.trace_length * 30 + 10_000,
        jobs=max(2, config.jobs),
        executor="supervised",
        # Generous for a healthy task, short enough that a stalled or
        # partitioned worker costs seconds, not a CI-visible hang.
        task_timeout=max(5.0, config.trace_length / 100.0),
        redispatch_budget=2,
        worker_fault_plan=plan,
    )
    journal = RunJournal(round_dir, shard=f"chaos-{round_index:02d}")
    try:
        result = run_table2(
            list(config.benchmarks), supervised_options, journal=journal
        )
    finally:
        journal.close()

    # Contract 1: worker faults never leak into row outcomes — every
    # benchmark completes, none degrades.
    for failure in result.failures:
        violations.append(
            f"{failure.benchmark}: worker fault leaked into a row failure "
            f"({failure.error_type}: {failure.message})"
        )
    completed = {row.benchmark for row in result.rows}
    for name in config.benchmarks:
        if name not in completed and not any(
            f.benchmark == name for f in result.failures
        ):
            violations.append(f"{name}: row lost by the supervised sweep")

    # Contract 2: bit identity — every stat of every part matches the
    # serial reference exactly.
    want = _stats_fingerprints(reference)
    got = _stats_fingerprints(result)
    for name in sorted(want):
        if name not in got:
            continue  # already reported above
        for part in _PARTS:
            if want[name][part] != got[name][part]:
                violations.append(
                    f"{name}/{part}: stats fingerprint diverged from the "
                    f"serial reference under worker faults"
                )

    # Contract 3: the shard journal survived — well-formed, no torn
    # lines from killed workers (only the parent writes it), and every
    # completed row loadable.
    reopened = RunJournal(round_dir, shard=f"chaos-{round_index:02d}")
    try:
        if reopened.skipped_lines:
            violations.append(
                f"shard journal has {reopened.skipped_lines} torn line(s)"
            )
        for entry in reopened.entries():
            if entry.status == "completed" and reopened.load_artifact(entry) is None:
                violations.append(f"{entry.key}: journaled row unloadable")
    finally:
        reopened.close()

    return RoundReport(
        round_index=round_index,
        fault_plan=plan.as_dict(),
        completed_rows=len(result.rows),
        failed_rows=len(result.failures),
        retried_to_success=0,
        bundles_verified=0,
        elapsed_s=round(time.perf_counter() - start, 3),
        violations=violations,
        mode="worker-faults",
    )


def _free_port() -> int:
    """A currently-free localhost TCP port for the round's coordinator."""
    import socket

    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _run_host_round(
    config: ChaosConfig, round_index: int, run_dir: Path
) -> RoundReport:
    """One host-level chaos round: distributed sweep vs serial truth.

    The full multi-host deployment, on localhost: real worker daemon
    *subprocesses* (``repro worker serve``) each loaded with the round's
    seeded host-fault plan, a real TCP coordinator, per-host journal
    shards.  Contracts are the worker round's — nothing leaks into row
    outcomes, every stat is bit-identical to the serial reference, the
    coordinator's shard journal reloads clean — plus one more: the
    round's shards (coordinator + surviving hosts) must fold through
    ``merge_journals`` into a resume-equivalent journal whose completed
    row set covers every benchmark.
    """
    import json
    import subprocess
    import sys

    from repro.experiments.harness import EvaluationOptions
    from repro.experiments.table2 import run_table2
    from repro.robustness.journal import RunJournal, merge_journals

    rng = _round_rng(config.seed, round_index, salt="chaos-host")
    plan = random_host_fault_plan(rng, config.benchmarks, config.max_faults)
    round_dir = run_dir / f"round-{round_index:02d}"
    round_dir.mkdir(parents=True, exist_ok=True)
    start = time.perf_counter()
    violations: list[str] = []

    base = dict(
        trace_length=config.trace_length,
        cycle_budget=config.trace_length * 30 + 10_000,
    )
    reference = run_table2(list(config.benchmarks), EvaluationOptions(**base))
    if reference.failures:  # pragma: no cover - benchmarks are healthy
        violations.append("serial reference run failed; cannot judge round")
        return RoundReport(
            round_index=round_index,
            fault_plan=plan.as_dict(),
            completed_rows=0,
            failed_rows=len(reference.failures),
            retried_to_success=0,
            bundles_verified=0,
            elapsed_s=round(time.perf_counter() - start, 3),
            violations=violations,
            mode="host-faults",
        )

    plan_file = round_dir / "host-fault-plan.json"
    plan_file.write_text(
        json.dumps(plan.as_dict(), indent=2, sort_keys=True), encoding="utf-8"
    )
    port = _free_port()
    workers = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker", "serve",
                "--connect", f"127.0.0.1:{port}",
                "--host", f"chaos-h{host_index}",
                "--run-dir", str(round_dir),
                "--fault-plan", str(plan_file),
                "--connect-retries", "120",
                "--quiet",
            ]
        )
        for host_index in range(config.hosts)
    ]
    dist_options = EvaluationOptions(
        **base,
        jobs=2,
        executor="distributed",
        # Generous for a healthy task, short enough that a stalled host
        # costs seconds, not a CI-visible hang.
        task_timeout=max(5.0, config.trace_length / 100.0),
        redispatch_budget=2,
        dist_port=port,
        dist_min_hosts=config.hosts,
        dist_wait_s=30.0,
    )
    shard = f"chaos-{round_index:02d}"
    journal = RunJournal(round_dir, shard=shard)
    try:
        result = run_table2(
            list(config.benchmarks), dist_options, journal=journal
        )
    finally:
        journal.close()
        # Reap the hosts: killed ones are gone, partitioned ones exited,
        # stalled ones are wedged in their sleep loop forever by design.
        for proc in workers:
            if proc.poll() is None:
                proc.kill()
        for proc in workers:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass

    # Contract 1: host faults never leak into row outcomes.
    for failure in result.failures:
        violations.append(
            f"{failure.benchmark}: host fault leaked into a row failure "
            f"({failure.error_type}: {failure.message})"
        )
    completed = {row.benchmark for row in result.rows}
    for name in config.benchmarks:
        if name not in completed and not any(
            f.benchmark == name for f in result.failures
        ):
            violations.append(f"{name}: row lost by the distributed sweep")

    # Contract 2: bit identity against the serial reference.
    want = _stats_fingerprints(reference)
    got = _stats_fingerprints(result)
    for name in sorted(want):
        if name not in got:
            continue  # already reported above
        for part in _PARTS:
            if want[name][part] != got[name][part]:
                violations.append(
                    f"{name}/{part}: stats fingerprint diverged from the "
                    f"serial reference under host faults"
                )

    # Contract 3: the coordinator's shard journal reloads clean (only
    # the sweep parent writes it; SIGKILL'd hosts can tear their *own*
    # shards, which the merge below tolerates by design).
    reopened = RunJournal(round_dir, shard=shard)
    try:
        if reopened.skipped_lines:
            violations.append(
                f"coordinator shard has {reopened.skipped_lines} torn line(s)"
            )
        for entry in reopened.entries():
            if entry.status == "completed" and reopened.load_artifact(entry) is None:
                violations.append(f"{entry.key}: journaled row unloadable")
    finally:
        reopened.close()

    # Contract 4: coordinator + host shards merge into one
    # resume-equivalent journal with a completed table2 row per
    # benchmark — losing any host mid-run must not cost merged rows.
    merged_dir = round_dir / "merged"
    try:
        merge_journals([round_dir], merged_dir)
    except Exception as error:  # noqa: BLE001 - any damage is a violation
        violations.append(
            f"shard merge failed ({type(error).__name__}: {error})"
        )
    else:
        merged = RunJournal(merged_dir)
        try:
            for name in config.benchmarks:
                entry = merged.entry(f"table2:{name}")
                if entry is None or not entry.completed:
                    violations.append(
                        f"{name}: merged journal is missing the completed row"
                    )
                elif merged.load_artifact(entry) is None:
                    violations.append(
                        f"{name}: merged journal row unloadable"
                    )
        finally:
            merged.close()

    return RoundReport(
        round_index=round_index,
        fault_plan=plan.as_dict(),
        completed_rows=len(result.rows),
        failed_rows=len(result.failures),
        retried_to_success=0,
        bundles_verified=0,
        elapsed_s=round(time.perf_counter() - start, 3),
        violations=violations,
        mode="host-faults",
    )


def run_chaos(
    config: Optional[ChaosConfig] = None,
    run_dir: Union[str, Path, None] = None,
) -> HealthReport:
    """Run the chaos soak; returns the :class:`HealthReport`.

    ``run_dir`` keeps the per-round journals, bundles, and the final
    ``health.json`` for post-mortems (CI uploads it on failure); when
    omitted everything lives in a temporary directory that is discarded
    after the verdict — the bundles have already been replay-verified by
    then.
    """
    config = config or ChaosConfig()
    if config.host_faults:
        round_fn, mode = _run_host_round, "host-faults"
    elif config.worker_faults:
        round_fn, mode = _run_worker_round, "worker-faults"
    else:
        round_fn, mode = _run_round, "fault-injection"
    start = time.perf_counter()
    if run_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            rounds = [
                round_fn(config, i, Path(tmp)) for i in range(config.rounds)
            ]
            report = HealthReport(
                seed=config.seed,
                rounds=rounds,
                elapsed_s=time.perf_counter() - start,
                mode=mode,
                config=asdict(config),
            )
        return report
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    rounds = [round_fn(config, i, run_dir) for i in range(config.rounds)]
    report = HealthReport(
        seed=config.seed,
        rounds=rounds,
        elapsed_s=time.perf_counter() - start,
        mode=mode,
        config=asdict(config),
    )
    report.save(run_dir / "health.json")
    return report


__all__ = [
    "HEALTH_SCHEMA",
    "ChaosConfig",
    "HealthReport",
    "RoundReport",
    "random_fault_plan",
    "random_host_fault_plan",
    "random_worker_fault_plan",
    "run_chaos",
]
