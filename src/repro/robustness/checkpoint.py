"""Checkpoint/resume for long simulations.

The simulator is deterministic pure-Python state, so a checkpoint is a
pickled :class:`~repro.uarch.processor.Processor` taken between cycles.
Resuming restores the processor mid-run and continues to completion with
bit-identical statistics — an interrupted multi-hour sweep loses at most
one checkpoint interval of work.

Typical use::

    processor = Processor(config, assignment)
    result, checkpoints = run_with_checkpoints(
        processor, trace, interval=50_000, path="run.ckpt"
    )

    # ... later, after an interruption:
    processor = restore(load_checkpoint("run.ckpt"))
    result = finish(processor)
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uarch.config import ProcessorConfig
    from repro.uarch.processor import Processor, SimulationResult
    from repro.workloads.trace import DynamicInstruction

#: Bump when the processor's pickled layout changes incompatibly.
#: v2: checkpoints carry the machine config's content fingerprint and
#: the on-disk format gained a magic header checked *before* unpickling.
CHECKPOINT_VERSION = 2

#: On-disk header: format identity + version, readable without (and
#: validated before) running the pickle machinery on untrusted bytes.
CHECKPOINT_MAGIC = b"repro-checkpoint %d\n" % CHECKPOINT_VERSION


@dataclass
class SimulationCheckpoint:
    """One resumable snapshot of an in-flight simulation."""

    version: int
    config_name: str
    cycle: int
    instructions_retired: int
    trace_length: int
    payload: bytes
    #: Content fingerprint of the machine config the snapshot was taken
    #: under; :func:`restore` can reject a checkpoint resumed against a
    #: different machine before any state is trusted.
    config_fingerprint: str = field(default="", repr=False)

    def summary(self) -> str:
        return (
            f"checkpoint[{self.config_name}] cycle={self.cycle} "
            f"retired={self.instructions_retired}/{self.trace_length}"
        )


def snapshot(processor: "Processor") -> SimulationCheckpoint:
    """Capture a resumable snapshot of ``processor`` between cycles."""
    from repro.perf.fingerprint import fingerprint

    return SimulationCheckpoint(
        version=CHECKPOINT_VERSION,
        config_name=processor.config.name,
        cycle=processor.cycle,
        instructions_retired=processor.stats.instructions,
        trace_length=len(processor._trace),
        payload=pickle.dumps(processor, protocol=pickle.HIGHEST_PROTOCOL),
        config_fingerprint=fingerprint(processor.config),
    )


def restore(
    checkpoint: SimulationCheckpoint,
    expected_config: Optional["ProcessorConfig"] = None,
) -> "Processor":
    """Reconstruct the mid-run processor held by ``checkpoint``.

    Raises :class:`~repro.errors.ConfigError` when the checkpoint was
    written by an incompatible build (version mismatch) or, when
    ``expected_config`` is given, under a machine config whose content
    fingerprint differs — resuming a snapshot on the wrong machine
    would silently produce numbers from a config nobody asked for.
    """
    from repro.errors import ConfigError

    if checkpoint.version != CHECKPOINT_VERSION:
        raise ConfigError(
            f"checkpoint version {checkpoint.version} is not resumable by "
            f"this build (expected {CHECKPOINT_VERSION})",
            config=checkpoint.config_name,
        )
    if expected_config is not None:
        from repro.perf.fingerprint import fingerprint

        expected = fingerprint(expected_config)
        if checkpoint.config_fingerprint != expected:
            raise ConfigError(
                "checkpoint was taken under a different machine config "
                f"({checkpoint.config_name}, fingerprint "
                f"{checkpoint.config_fingerprint[:12]}...) than the one "
                f"requested ({expected_config.name}, {expected[:12]}...)",
                config=checkpoint.config_name,
                expected_config=expected_config.name,
            )
    return pickle.loads(checkpoint.payload)


def save_checkpoint(checkpoint: SimulationCheckpoint, path: str) -> None:
    """Write ``checkpoint`` atomically: magic header, then the pickle."""
    from repro.robustness.atomicio import atomic_write_bytes

    atomic_write_bytes(
        path,
        CHECKPOINT_MAGIC
        + pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL),
    )


def load_checkpoint(path: str) -> SimulationCheckpoint:
    """Read a checkpoint file, validating the header before unpickling.

    A missing or wrong magic header (truncated file, a pickle from an
    older build, some unrelated file) raises a typed
    :class:`~repro.errors.ConfigError` without ever handing the bytes to
    ``pickle`` — so does a file whose payload is not a checkpoint.
    """
    from repro.errors import ConfigError

    with open(path, "rb") as fh:
        header = fh.readline(len(CHECKPOINT_MAGIC) + 32)
        if header != CHECKPOINT_MAGIC:
            raise ConfigError(
                f"{path!r} is not a version-{CHECKPOINT_VERSION} checkpoint "
                f"file (bad header {header[:32]!r})",
                path=str(path),
            )
        try:
            checkpoint = pickle.load(fh)
        except Exception as error:
            raise ConfigError(
                f"checkpoint file {path!r} is corrupt "
                f"({type(error).__name__}: {error})",
                path=str(path),
            ) from None
    if not isinstance(checkpoint, SimulationCheckpoint):
        raise ConfigError(
            f"checkpoint file {path!r} holds a "
            f"{type(checkpoint).__name__}, not a SimulationCheckpoint",
            path=str(path),
        )
    return checkpoint


def finish(processor: "Processor") -> "SimulationResult":
    """Run a (restored) processor to completion and return its result."""
    processor.advance()
    return processor.finalize()


def run_with_checkpoints(
    processor: "Processor",
    trace: Sequence["DynamicInstruction"],
    interval: int,
    max_cycles: int = 0,
    path: Optional[str] = None,
    sink: Optional[Callable[[SimulationCheckpoint], None]] = None,
) -> tuple["SimulationResult", list[SimulationCheckpoint]]:
    """Simulate ``trace``, snapshotting every ``interval`` cycles.

    Each snapshot is handed to ``sink`` (when given) and written to
    ``path`` (when given; the file always holds the newest snapshot).
    Returns the final result plus every checkpoint taken.
    """
    if interval < 1:
        from repro.errors import ConfigError

        raise ConfigError("checkpoint interval must be >= 1", interval=interval)
    processor.start(trace, max_cycles)
    checkpoints: list[SimulationCheckpoint] = []
    while not processor.advance(interval):
        checkpoint = snapshot(processor)
        checkpoints.append(checkpoint)
        if sink is not None:
            sink(checkpoint)
        if path is not None:
            save_checkpoint(checkpoint, path)
    return processor.finalize(), checkpoints
