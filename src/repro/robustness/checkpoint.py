"""Checkpoint/resume for long simulations.

The simulator is deterministic pure-Python state, so a checkpoint is a
pickled :class:`~repro.uarch.processor.Processor` taken between cycles.
Resuming restores the processor mid-run and continues to completion with
bit-identical statistics — an interrupted multi-hour sweep loses at most
one checkpoint interval of work.

Typical use::

    processor = Processor(config, assignment)
    result, checkpoints = run_with_checkpoints(
        processor, trace, interval=50_000, path="run.ckpt"
    )

    # ... later, after an interruption:
    processor = restore(load_checkpoint("run.ckpt"))
    result = finish(processor)
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uarch.processor import Processor, SimulationResult
    from repro.workloads.trace import DynamicInstruction

#: Bump when the processor's pickled layout changes incompatibly.
CHECKPOINT_VERSION = 1


@dataclass
class SimulationCheckpoint:
    """One resumable snapshot of an in-flight simulation."""

    version: int
    config_name: str
    cycle: int
    instructions_retired: int
    trace_length: int
    payload: bytes

    def summary(self) -> str:
        return (
            f"checkpoint[{self.config_name}] cycle={self.cycle} "
            f"retired={self.instructions_retired}/{self.trace_length}"
        )


def snapshot(processor: "Processor") -> SimulationCheckpoint:
    """Capture a resumable snapshot of ``processor`` between cycles."""
    return SimulationCheckpoint(
        version=CHECKPOINT_VERSION,
        config_name=processor.config.name,
        cycle=processor.cycle,
        instructions_retired=processor.stats.instructions,
        trace_length=len(processor._trace),
        payload=pickle.dumps(processor, protocol=pickle.HIGHEST_PROTOCOL),
    )


def restore(checkpoint: SimulationCheckpoint) -> "Processor":
    """Reconstruct the mid-run processor held by ``checkpoint``."""
    from repro.errors import SimulationError

    if checkpoint.version != CHECKPOINT_VERSION:
        raise SimulationError(
            f"checkpoint version {checkpoint.version} is not resumable by "
            f"this build (expected {CHECKPOINT_VERSION})",
            config=checkpoint.config_name,
        )
    return pickle.loads(checkpoint.payload)


def save_checkpoint(checkpoint: SimulationCheckpoint, path: str) -> None:
    with open(path, "wb") as fh:
        pickle.dump(checkpoint, fh, protocol=pickle.HIGHEST_PROTOCOL)


def load_checkpoint(path: str) -> SimulationCheckpoint:
    with open(path, "rb") as fh:
        return pickle.load(fh)


def finish(processor: "Processor") -> "SimulationResult":
    """Run a (restored) processor to completion and return its result."""
    processor.advance()
    return processor.finalize()


def run_with_checkpoints(
    processor: "Processor",
    trace: Sequence["DynamicInstruction"],
    interval: int,
    max_cycles: int = 0,
    path: Optional[str] = None,
    sink: Optional[Callable[[SimulationCheckpoint], None]] = None,
) -> tuple["SimulationResult", list[SimulationCheckpoint]]:
    """Simulate ``trace``, snapshotting every ``interval`` cycles.

    Each snapshot is handed to ``sink`` (when given) and written to
    ``path`` (when given; the file always holds the newest snapshot).
    Returns the final result plus every checkpoint taken.
    """
    if interval < 1:
        from repro.errors import ConfigError

        raise ConfigError("checkpoint interval must be >= 1", interval=interval)
    processor.start(trace, max_cycles)
    checkpoints: list[SimulationCheckpoint] = []
    while not processor.advance(interval):
        checkpoint = snapshot(processor)
        checkpoints.append(checkpoint)
        if sink is not None:
            sink(checkpoint)
        if path is not None:
            save_checkpoint(checkpoint, path)
    return processor.finalize(), checkpoints
