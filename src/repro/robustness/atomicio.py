"""Atomic, durable file writes shared by the resilience layer.

Every artifact that a crashed or killed process must never leave
half-written — ``BENCH_table2.json``, run-journal sidecars, replay
bundles, chaos health reports, checkpoints — goes through one helper:
write to a temporary file in the target directory, flush, ``fsync``,
``os.replace`` over the destination, then ``fsync`` the directory so the
rename itself is durable.  A reader therefore sees either the old
complete file or the new complete file, never a torn one.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union

PathLike = Union[str, os.PathLike]


def fsync_directory(directory: PathLike) -> None:
    """Flush a directory's metadata (best effort on exotic filesystems)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - unusual fs without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on dirs here
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Durably replace ``path`` with ``data`` (write-temp-fsync-rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_directory(path.parent)


def atomic_write_text(path: PathLike, text: str) -> None:
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(
    path: PathLike, obj: Any, indent: int = 2, sort_keys: bool = True
) -> None:
    """Durably replace ``path`` with ``obj`` rendered as JSON."""
    atomic_write_text(
        path, json.dumps(obj, indent=indent, sort_keys=sort_keys) + "\n"
    )


def append_jsonl_line(path: PathLike, obj: Any) -> None:
    """Durably append one JSON object as a line to ``path``.

    The append-side sibling of the write-replace helpers above, for
    history files that grow one record per run (``BENCH_history.jsonl``,
    span sinks): open in append mode, write the full line, flush,
    ``fsync``.  A crash mid-append leaves at most one torn trailing line,
    which every JSONL reader in this repo already tolerates.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(obj, sort_keys=True) + "\n"
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line)
        fh.flush()
        os.fsync(fh.fileno())


__all__ = [
    "append_jsonl_line",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "fsync_directory",
]
