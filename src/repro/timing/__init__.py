"""Cycle-time delay models and run-time analysis (Section 4.2 / Section 5)."""

from repro.timing.analysis import (
    NetPerformance,
    available_clock_reduction,
    break_even_clock_reduction,
    format_cycle_time_report,
    net_performance,
)
from repro.timing.palacharla import (
    DelayBreakdown,
    MachineShape,
    TECH_018,
    TECH_035,
    TECH_080,
    TECHNOLOGIES,
    Technology,
    calibrated_technologies,
    cycle_time,
    delay_breakdown,
    width_penalty,
)

__all__ = [
    "NetPerformance",
    "available_clock_reduction",
    "break_even_clock_reduction",
    "format_cycle_time_report",
    "net_performance",
    "DelayBreakdown",
    "MachineShape",
    "TECH_018",
    "TECH_035",
    "TECH_080",
    "TECHNOLOGIES",
    "Technology",
    "calibrated_technologies",
    "cycle_time",
    "delay_breakdown",
    "width_penalty",
]
