"""Palacharla/Jouppi/Smith-style cycle-time delay models.

Section 4.2 of the multicluster paper leans on "Complexity-Effective
Superscalar Processors" (ISCA 1997 [14]) for exactly two anchor facts:

* at **0.35 µm**, the worst-case critical-path delay grows **18 %** when
  moving from a four-issue to an eight-issue processor (1248 -> 1484 in
  the paper's units);
* at **0.18 µm**, the same step costs **82 %**, because wire delay shrinks
  far more slowly than gate delay as features scale.

This module implements a parametric model with the published *structure*
(quadratic window/issue-width terms for wakeup, logarithmic select trees,
port-quadratic register files, wire-dominated bypass networks) and
calibrates the per-technology wire/gate delay units so the two anchors are
met exactly.  The model then yields per-structure delay breakdowns and
cycle times for arbitrary machine shapes — which is all the multicluster
analysis consumes.

The structures modelled (one of which sets the clock):

* **rename** — dependence-check + map-table read; grows mildly with width.
* **window** (wakeup + select) — the dispatch-queue scheduling logic; the
  R10000-style critical path the paper wants to shrink by partitioning.
* **regfile** — read access with ``3 * issue_width`` ports.
* **bypass** — result-forwarding wires crossing all functional units;
  almost purely wire delay, hence the 0.18 µm blow-up.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Technology:
    """One process generation.

    ``gate_unit_ps`` is the delay of a reference logic stage;
    ``wire_unit_ps`` is the RC delay of a reference-length wire segment.
    Values are calibrated by :func:`calibrated_technologies`.
    """

    name: str
    feature_um: float
    gate_unit_ps: float
    wire_unit_ps: float


@dataclass(frozen=True)
class MachineShape:
    """The structural parameters the delay model consumes."""

    issue_width: int
    window_entries: int
    physical_registers: int

    @classmethod
    def eight_issue(cls) -> "MachineShape":
        """The paper's single-cluster machine (Section 4.1)."""
        return cls(issue_width=8, window_entries=128, physical_registers=128)

    @classmethod
    def four_issue(cls) -> "MachineShape":
        """One cluster of the paper's dual-cluster machine."""
        return cls(issue_width=4, window_entries=64, physical_registers=64)


@dataclass
class DelayBreakdown:
    """Per-structure delays (ps) and the resulting cycle time."""

    rename: float
    window: float
    regfile: float
    bypass: float
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def cycle_time(self) -> float:
        return max(self.rename, self.window, self.regfile, self.bypass)

    @property
    def critical_structure(self) -> str:
        delays = {
            "rename": self.rename,
            "window": self.window,
            "regfile": self.regfile,
            "bypass": self.bypass,
        }
        return max(delays, key=delays.get)  # type: ignore[arg-type]


# --- structural coefficient shapes (dimensionless, technology-free) -------
# These follow the functional forms of the ISCA'97 fits; the absolute scale
# comes from the per-technology gate/wire units.

def _rename_terms(shape: MachineShape) -> tuple[float, float]:
    iw = shape.issue_width
    logic = 6.0 + 1.2 * math.log2(max(iw, 2))
    wire = 0.4 * iw
    return logic, wire


def _wakeup_terms(shape: MachineShape) -> tuple[float, float]:
    iw, ws = shape.issue_width, shape.window_entries
    # Tag drive spans the window; each entry carries 2*iw comparators, so
    # the broadcast wire grows with both window depth and width.
    logic = 3.0 + 0.9 * math.log2(ws)
    wire = 0.02 * ws + 0.004 * iw * ws
    return logic, wire


def _select_terms(shape: MachineShape) -> tuple[float, float]:
    ws = shape.window_entries
    # Arbitration tree of radix-4 cells.
    logic = 2.0 + 2.1 * math.log(ws, 4)
    wire = 0.01 * ws
    return logic, wire


def _regfile_terms(shape: MachineShape) -> tuple[float, float]:
    iw, regs = shape.issue_width, shape.physical_registers
    ports = 3 * iw
    # Cell grows linearly with ports in each dimension; word/bit lines grow
    # with ports * sqrt(entries).
    logic = 5.0 + 0.8 * math.log2(regs)
    wire = 0.012 * ports * math.sqrt(regs)
    return logic, wire


def _bypass_terms(shape: MachineShape) -> tuple[float, float]:
    iw = shape.issue_width
    # Result wires run the full height of the functional-unit stack; length
    # scales with the number of units (~iw) and each wire is loaded by iw
    # bypass muxes: the classic iw^2 wire structure.
    logic = 1.0
    wire = 0.11 * iw * iw
    return logic, wire


def structure_delay(
    terms: tuple[float, float], tech: Technology
) -> float:
    logic, wire = terms
    return logic * tech.gate_unit_ps + wire * tech.wire_unit_ps


def delay_breakdown(shape: MachineShape, tech: Technology) -> DelayBreakdown:
    """Per-structure delays of ``shape`` in ``tech``."""
    wakeup = structure_delay(_wakeup_terms(shape), tech)
    select = structure_delay(_select_terms(shape), tech)
    return DelayBreakdown(
        rename=structure_delay(_rename_terms(shape), tech),
        window=wakeup + select,
        regfile=structure_delay(_regfile_terms(shape), tech),
        bypass=structure_delay(_bypass_terms(shape), tech),
        extras={"wakeup": wakeup, "select": select},
    )


def cycle_time(shape: MachineShape, tech: Technology) -> float:
    """Worst-case (clock-setting) structure delay in ps."""
    return delay_breakdown(shape, tech).cycle_time


def width_penalty(tech: Technology) -> float:
    """Fractional cycle-time growth from the 4-issue to the 8-issue shape.

    The quantity the multicluster paper reads off Palacharla et al.:
    0.18 at 0.35 µm and 0.82 at 0.18 µm.
    """
    four = cycle_time(MachineShape.four_issue(), tech)
    eight = cycle_time(MachineShape.eight_issue(), tech)
    return eight / four - 1.0


# ------------------------------------------------------------- calibration

#: Anchors: feature size -> (gate unit ps, target 4->8 penalty).  The
#: 0.35um and 0.18um penalties are the published numbers the multicluster
#: paper quotes; 0.8um is set just above the model's pure-logic floor
#: (wire delay was a minor factor at that generation).
_ANCHORS = {
    "0.8um": (0.8, 60.0, 0.12),
    "0.35um": (0.35, 26.0, 0.18),
    "0.18um": (0.18, 13.5, 0.82),
}


def _calibrate_wire_unit(gate_unit: float, target_penalty: float) -> float:
    """Find the wire unit making :func:`width_penalty` hit the target.

    The penalty is monotonically increasing in the wire/gate ratio (the
    8-issue shape has proportionally more wire), so bisection converges.
    """
    lo, hi = 0.0, gate_unit * 10_000
    for _ in range(200):
        mid = (lo + hi) / 2
        tech = Technology("probe", 0.0, gate_unit, mid)
        if width_penalty(tech) < target_penalty:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def calibrated_technologies() -> dict[str, Technology]:
    """The three process generations, calibrated to the published anchors."""
    result: dict[str, Technology] = {}
    for name, (feature, gate_unit, penalty) in _ANCHORS.items():
        wire_unit = _calibrate_wire_unit(gate_unit, penalty)
        result[name] = Technology(name, feature, gate_unit, wire_unit)
    return result


TECHNOLOGIES = calibrated_technologies()
TECH_035 = TECHNOLOGIES["0.35um"]
TECH_018 = TECHNOLOGIES["0.18um"]
TECH_080 = TECHNOLOGIES["0.8um"]
