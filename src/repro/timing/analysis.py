"""Cycle-time analysis: turning cycle counts into run-time conclusions.

Implements the arithmetic of Section 4.2's closing paragraphs and
Section 5: a multicluster processor wins overall when its clock-period
advantage outweighs its cycle-count penalty,

    run_time = cycles * clock_period
    dual wins  <=>  T_dual / T_single  <  C_single / C_dual.

The paper's worked example: a worst-case 25 % cycle slowdown is paid off
by a clock period 20 % smaller (1/1.25).  Palacharla et al. give the
available clock advantage of a 4-issue cluster over an 8-issue monolith:
18 % at 0.35 µm (insufficient) and 82 %... more precisely, the 8-issue
cycle *time* is 1.18x / 1.82x the 4-issue one, so the available period
reduction is 1 - 1/1.18 = 15 % at 0.35 µm and 1 - 1/1.82 = 45 % at
0.18 µm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.timing.palacharla import (
    MachineShape,
    TECHNOLOGIES,
    Technology,
    cycle_time,
    width_penalty,
)


def break_even_clock_reduction(slowdown_pct: float) -> float:
    """Clock-period reduction (%) needed to pay for a cycle slowdown.

    ``slowdown_pct`` is the Table 2 magnitude (e.g. 25 for a 25 % increase
    in cycles).  A 25 % slowdown needs a 20 % smaller period:
    ``100 * (1 - 1 / 1.25)``.
    """
    ratio = 1.0 + slowdown_pct / 100.0
    return 100.0 * (1.0 - 1.0 / ratio)


def available_clock_reduction(tech: Technology) -> float:
    """Clock-period reduction (%) a 4-issue cluster enjoys over an 8-issue
    monolith in ``tech``, per the delay model."""
    penalty = width_penalty(tech)  # T8 = T4 * (1 + penalty)
    return 100.0 * (1.0 - 1.0 / (1.0 + penalty))


@dataclass
class NetPerformance:
    """Net multicluster outcome for one benchmark in one technology."""

    benchmark: str
    technology: str
    cycle_ratio: float  # C_dual / C_single (>1 = more cycles)
    clock_ratio: float  # T_dual / T_single (<1 = faster clock)

    @property
    def runtime_ratio(self) -> float:
        """run_time_dual / run_time_single; < 1 means the dual wins."""
        return self.cycle_ratio * self.clock_ratio

    @property
    def net_speedup_pct(self) -> float:
        return 100.0 * (1.0 / self.runtime_ratio - 1.0)


def net_performance(
    benchmark: str,
    single_cycles: int,
    dual_cycles: int,
    tech: Technology,
    single_shape: MachineShape | None = None,
    dual_shape: MachineShape | None = None,
) -> NetPerformance:
    """Combine simulated cycle counts with modelled clock periods."""
    single_shape = single_shape or MachineShape.eight_issue()
    dual_shape = dual_shape or MachineShape.four_issue()
    t_single = cycle_time(single_shape, tech)
    t_dual = cycle_time(dual_shape, tech)
    return NetPerformance(
        benchmark=benchmark,
        technology=tech.name,
        cycle_ratio=dual_cycles / single_cycles,
        clock_ratio=t_dual / t_single,
    )


def format_cycle_time_report() -> str:
    """The Section 4.2/5 headline numbers from the calibrated model."""
    lines = [
        "Palacharla-style cycle-time model (calibrated to the published anchors)",
        f"{'technology':<10} {'T(4-issue)':>11} {'T(8-issue)':>11} {'penalty':>8} "
        f"{'avail. clock reduction':>23}",
    ]
    for name in ("0.8um", "0.35um", "0.18um"):
        tech = TECHNOLOGIES[name]
        t4 = cycle_time(MachineShape.four_issue(), tech)
        t8 = cycle_time(MachineShape.eight_issue(), tech)
        lines.append(
            f"{name:<10} {t4:>9.0f}ps {t8:>9.0f}ps {100 * (t8 / t4 - 1):>7.0f}% "
            f"{available_clock_reduction(tech):>22.1f}%"
        )
    lines.append("")
    lines.append(
        "break-even: a 25% worst-case cycle slowdown (Table 2, local scheduler) "
        f"needs a {break_even_clock_reduction(25.0):.0f}% smaller clock period"
    )
    return "\n".join(lines)
