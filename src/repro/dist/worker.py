"""The distributed sweep worker daemon (``repro worker serve``).

One worker is one *host's* share of a sweep: it connects to a
coordinator (:mod:`repro.dist.coordinator`), registers itself under a
host name, and then lives in a lease loop —

1. receive a task frame ``(ticket, benchmark, part, payload)``;
2. execute it through the same task runner the single-host pool uses
   (``fn`` names a module-level callable, e.g.
   ``repro.perf.parallel:_sweep_task``), against this process's private
   :class:`~repro.perf.cache.ArtifactCache`;
3. journal the finished row into its **own shard**
   (``journal-<host>.jsonl`` under ``--run-dir``) so the row is durable
   on this host before the result ever crosses the network;
4. stream the result home and renew its lease.

While idle it heartbeats every ``heartbeat_interval`` seconds so the
coordinator's host registry can tell a quiet host from a dead one.
Determinism does not depend on any of this: tasks are pure functions of
their payload, so *which* host runs one — or how many times, after a
loss — cannot change its value.

The chaos harness injects host-level faults here, at task pickup,
mirroring the single-host supervised worker:

* ``host_kill`` — SIGKILL our own process (a crashed/OOM'd host; the
  TCP connection drops and the coordinator requeues);
* ``host_partition`` — drop the socket mid-task and exit (the host is
  healthy but unreachable; results must never be double-counted);
* ``host_stall`` — wedge forever (a hung host; the coordinator's
  per-task deadline expires the lease).
"""

from __future__ import annotations

import importlib
import logging
import os
import signal
import socket
import time
from dataclasses import dataclass
from typing import Optional

from repro.dist.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    parse_address,
    recv_message,
    send_message,
)
from repro.errors import ConfigError

log = logging.getLogger("repro.dist.worker")

#: Seconds between idle heartbeats (must beat the coordinator's idle
#: lease timeout with room to spare).
DEFAULT_HEARTBEAT_INTERVAL = 2.0

#: Default attempts to reach the coordinator before giving up (the
#: coordinator is often still binding when workers launch).
DEFAULT_CONNECT_RETRIES = 40
CONNECT_RETRY_DELAY_S = 0.25


def default_host_name() -> str:
    """A host identity unique enough for shard names: ``host-pid``."""
    return f"{socket.gethostname()}-{os.getpid()}"


def resolve_task_fn(spec: str):
    """Resolve a ``module:qualname`` task-function reference.

    The coordinator names the callable instead of pickling it so the
    frame stays small and version skew fails loudly (an unimportable
    reference is a typed error, not a mystery unpickling crash).
    """
    module_name, sep, qualname = spec.partition(":")
    if not sep or not module_name or not qualname:
        raise ProtocolError(
            f"task function must be 'module:qualname', got {spec!r}",
            task_fn=spec,
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as error:
        raise ProtocolError(
            f"cannot import task-function module {module_name!r}: {error}",
            task_fn=spec,
        ) from None
    fn = module
    for part in qualname.split("."):
        fn = getattr(fn, part, None)
        if fn is None:
            raise ProtocolError(
                f"module {module_name!r} has no attribute {qualname!r}",
                task_fn=spec,
            )
    if not callable(fn):
        raise ProtocolError(
            f"task function {spec!r} resolved to a non-callable", task_fn=spec
        )
    return fn


def echo_task(payload):
    """Diagnostic task: returns its payload (protocol smoke tests)."""
    return payload


@dataclass
class WorkerReport:
    """What one ``serve()`` lifetime did (logged and returned)."""

    host: str
    tasks_completed: int = 0
    tasks_failed: int = 0
    heartbeats_sent: int = 0
    rows_journaled: int = 0
    spans_journaled: int = 0
    #: Why the loop ended: "shutdown" (coordinator said so),
    #: "disconnected" (coordinator vanished), "partitioned" (an injected
    #: host_partition dropped the socket).
    stopped: str = "shutdown"
    elapsed_s: float = 0.0

    def format(self) -> str:
        return (
            f"worker {self.host}: {self.tasks_completed} task(s) completed, "
            f"{self.tasks_failed} failed, {self.rows_journaled} row(s) "
            f"journaled, stopped: {self.stopped} "
            f"({self.elapsed_s:.1f}s)"
        )


class WorkerDaemon:
    """One registered worker: lease tasks, execute, journal, report.

    Runs blocking in the calling thread — the CLI's process *is* the
    worker; tests run daemons on background threads against an
    in-process coordinator.
    """

    def __init__(
        self,
        address: str,
        host: Optional[str] = None,
        run_dir=None,
        cache_dir=None,
        fault_plan=None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        connect_retries: int = DEFAULT_CONNECT_RETRIES,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ConfigError(
                "worker heartbeat interval must be > 0 seconds",
                heartbeat_interval=heartbeat_interval,
            )
        self.address = parse_address(address)
        self.host = host or default_host_name()
        self.run_dir = run_dir
        self.cache_dir = cache_dir
        self.fault_plan = fault_plan
        self.heartbeat_interval = heartbeat_interval
        self.connect_retries = max(0, connect_retries)
        self._sock: Optional[socket.socket] = None
        self._fns: dict = {}
        self._span_writer = None

    # ----------------------------------------------------------- lifecycle
    def _connect(self) -> socket.socket:
        last_error: Optional[Exception] = None
        for attempt in range(self.connect_retries + 1):
            try:
                return socket.create_connection(self.address, timeout=10.0)
            except OSError as error:
                last_error = error
                if attempt < self.connect_retries:
                    time.sleep(CONNECT_RETRY_DELAY_S)
        raise ConfigError(
            f"cannot reach coordinator at "
            f"{self.address[0]}:{self.address[1]} after "
            f"{self.connect_retries + 1} attempt(s): {last_error}",
            address=f"{self.address[0]}:{self.address[1]}",
        )

    def serve(self) -> WorkerReport:
        """Register and drain tasks until shutdown or a lost coordinator."""
        from repro.perf.executor import _init_worker

        report = WorkerReport(host=self.host)
        started = time.monotonic()
        # The same per-process artifact cache (and SIGINT discipline)
        # every pool worker gets: the parent/coordinator owns shutdown.
        _init_worker(self.cache_dir)
        journal = self._open_journal()
        sock = self._connect()
        self._sock = sock
        try:
            send_message(
                sock,
                "register",
                host=self.host,
                pid=os.getpid(),
                version=PROTOCOL_VERSION,
            )
            welcome = recv_message(sock)
            if welcome is None or welcome[0] != "welcome":
                raise ProtocolError(
                    "coordinator did not welcome the registration",
                    got=None if welcome is None else welcome[0],
                )
            if welcome[1].get("version") != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"protocol version skew: coordinator speaks "
                    f"{welcome[1].get('version')}, worker speaks "
                    f"{PROTOCOL_VERSION}",
                )
            log.info("worker %s registered with %s:%d",
                     self.host, self.address[0], self.address[1])
            sock.settimeout(self.heartbeat_interval)
            self._loop(sock, report, journal)
        except ProtocolError:
            report.stopped = "disconnected"
        finally:
            report.elapsed_s = time.monotonic() - started
            if journal is not None:
                journal.close()
            if self._span_writer is not None:
                self._span_writer.close()
                self._span_writer = None
            try:
                sock.close()
            except OSError:  # pragma: no cover - already dead
                pass
            self._sock = None
        log.info("%s", report.format())
        return report

    def _open_journal(self):
        if self.run_dir is None:
            return None
        from repro.robustness.journal import RunJournal

        return RunJournal(self.run_dir, shard=self.host)

    # ---------------------------------------------------------------- loop
    def _loop(self, sock: socket.socket, report: WorkerReport, journal) -> None:
        while True:
            try:
                message = recv_message(sock)
            except socket.timeout:
                send_message(sock, "heartbeat", host=self.host)
                report.heartbeats_sent += 1
                continue
            if message is None:
                report.stopped = "disconnected"
                return
            kind, data = message
            if kind == "shutdown":
                report.stopped = "shutdown"
                return
            if kind == "ping":
                send_message(sock, "heartbeat", host=self.host)
                report.heartbeats_sent += 1
                continue
            if kind == "task":
                if not self._run_task(sock, data, report, journal):
                    return
                continue
            log.warning("worker %s ignoring unknown frame %r", self.host, kind)

    def _run_task(
        self, sock: socket.socket, data: dict, report: WorkerReport, journal
    ) -> bool:
        """Execute one leased task; False ends the serve loop (partition)."""
        ticket = data["ticket"]
        benchmark = data.get("benchmark", "?")
        part = data.get("part", "?")
        fault = None
        if self.fault_plan is not None:
            fault = self.fault_plan.host_fault(
                benchmark, part, data.get("dispatch", 0)
            )
        if fault == "host_kill":
            # A crashed host: the TCP connection drops with us.
            os.kill(os.getpid(), signal.SIGKILL)
        if fault == "host_stall":
            while True:  # a hung host: the coordinator's deadline ends this
                time.sleep(60.0)
        started = time.perf_counter()
        try:
            fn = self._task_fn(data["fn"])
            value = fn(data["payload"])
            ok = True
            error_text = None
        except Exception as error:  # noqa: BLE001 - shipped home, not raised
            value = None
            ok = False
            error_text = f"{type(error).__name__}: {error}"
            report.tasks_failed += 1
            log.warning(
                "worker %s task %s:%s failed: %s",
                self.host, benchmark, part, error_text,
            )
        elapsed = time.perf_counter() - started
        if ok:
            report.tasks_completed += 1
            if journal is not None and data.get("key"):
                # Durable on this host before the result crosses the
                # network: a coordinator loss cannot orphan the work.
                journal.record_completed(
                    data["key"],
                    data.get("fingerprint", ""),
                    artifact_value=value,
                    elapsed_s=elapsed,
                )
                report.rows_journaled += 1
            self._journal_spans(data, value, report)
        if fault == "host_partition":
            # Healthy host, dead network: the work is done — and durable
            # on this shard — but the result never crosses the wire.
            # The coordinator must requeue it, and any later copy of the
            # row (from the re-dispatch's host) must dedup cleanly.
            sock.close()
            report.stopped = "partitioned"
            return False
        send_message(
            sock,
            "result",
            ticket=ticket,
            host=self.host,
            ok=ok,
            value=value,
            error=error_text,
            elapsed_s=elapsed,
        )
        return True

    def _task_fn(self, spec: str):
        fn = self._fns.get(spec)
        if fn is None:
            fn = resolve_task_fn(spec)
            self._fns[spec] = fn
        return fn

    def _journal_spans(self, data: dict, value, report: WorkerReport) -> None:
        """Journal this task's deterministic spans into our shard.

        The frame's ``span_fn`` (``module:qualname``, same discipline as
        ``fn``) rebuilds the spans from the task value; content-derived
        span ids make the records identical to the driver's own, so the
        merge dedupes them.  Durable host-side before the result is sent,
        like journal rows — span tracing must never fail a task.
        """
        trace_id = data.get("trace_id")
        span_fn_spec = data.get("span_fn")
        if not trace_id or not span_fn_spec or self.run_dir is None:
            return
        try:
            if self._span_writer is None:
                from repro.obs.spans import SpanWriter

                self._span_writer = SpanWriter(self.run_dir, shard=self.host)
                self._span_writer.trace_id = trace_id
            span_fn = self._task_fn(span_fn_spec)
            report.spans_journaled += self._span_writer.write_all(
                span_fn(trace_id, value)
            )
        except Exception as error:  # noqa: BLE001 - observability only
            log.warning(
                "worker %s could not journal spans: %s", self.host, error
            )


def serve_worker(
    address: str,
    host: Optional[str] = None,
    run_dir=None,
    cache_dir=None,
    fault_plan_file=None,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    connect_retries: int = DEFAULT_CONNECT_RETRIES,
) -> WorkerReport:
    """CLI entry: build and run a :class:`WorkerDaemon`.

    ``fault_plan_file`` (chaos/CI) is a JSON file holding a serialized
    :class:`~repro.robustness.faultinject.FaultPlan` of host faults.
    """
    fault_plan = None
    if fault_plan_file is not None:
        import json

        from repro.robustness.faultinject import FaultPlan

        try:
            with open(fault_plan_file, "r", encoding="utf-8") as fh:
                fault_plan = FaultPlan.from_dict(json.load(fh))
        except (OSError, ValueError) as error:
            raise ConfigError(
                f"cannot load fault plan {fault_plan_file!r}: {error}",
                fault_plan=str(fault_plan_file),
            ) from None
    daemon = WorkerDaemon(
        address,
        host=host,
        run_dir=run_dir,
        cache_dir=cache_dir,
        fault_plan=fault_plan,
        heartbeat_interval=heartbeat_interval,
        connect_retries=connect_retries,
    )
    return daemon.serve()


__all__ = [
    "DEFAULT_CONNECT_RETRIES",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "WorkerDaemon",
    "WorkerReport",
    "default_host_name",
    "echo_task",
    "resolve_task_fn",
    "serve_worker",
]
