"""Length-prefixed TCP framing for the distributed sweep protocol.

The coordinator and its workers speak *messages*: a ``(kind, data)``
pair where ``kind`` is a short ASCII tag and ``data`` a dict of
primitives plus (for tasks and results) pickled sweep payloads.  On the
wire each message is one *frame*::

    +----------+----------------------------+
    | 4 bytes  |  ``length`` bytes          |
    | length   |  pickle((kind, data))      |
    | (``!I``) |                            |
    +----------+----------------------------+

Length-prefix framing is what makes host loss a *clean* event: a frame
either arrives whole or the connection dies, so the coordinator never
has to guess where a half-written message ends — exactly the torn-line
discipline the run journal applies to files, applied to sockets.

Two consumption styles share the same decoder:

* **blocking** (`send_message` / `recv_message`) — the worker daemon's
  simple request loop;
* **buffered** (:class:`FrameDecoder`) — the coordinator feeds whatever
  ``recv`` returned into the decoder and gets back every *complete*
  frame, keeping partial tails buffered; built for a ``selectors`` loop
  over non-blocking sockets.

Pickle is the payload codec because tasks carry real objects
(:class:`~repro.experiments.harness.EvaluationOptions`, fault plans,
simulation results) that already cross process boundaries pickled in
the single-host pool.  The protocol therefore trusts its peers — it is
a cluster-internal fabric like the multicluster paper's inter-cluster
buses, not an authentication boundary; bind to loopback or a private
network.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Optional

from repro.errors import ConfigError

#: Bump when the wire format changes incompatibly; checked at register.
PROTOCOL_VERSION = 1

#: Frames above this are a protocol violation, not a big result: a
#: corrupt or hostile length prefix must not make the peer allocate
#: gigabytes.  Sweep artifacts are megabytes at the very most.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct("!I")


class ProtocolError(ConfigError):
    """A malformed frame or out-of-contract message.

    A :class:`~repro.errors.ConfigError` subclass so the CLI's typed
    exit-code discipline applies: a protocol violation is a deployment
    mistake (version skew, a stranger on the port), not a simulation
    failure.
    """


def encode_frame(kind: str, data: dict) -> bytes:
    """One wire-ready frame for ``(kind, data)``."""
    payload = pickle.dumps((kind, data), protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"message {kind!r} encodes to {len(payload)} bytes, above the "
            f"frame ceiling of {MAX_FRAME_BYTES}",
            kind=kind,
            size=len(payload),
        )
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> tuple[str, dict]:
    """Decode one frame body back into ``(kind, data)``."""
    try:
        message = pickle.loads(payload)
    except Exception as error:  # noqa: BLE001 - any unpickling damage
        raise ProtocolError(
            f"undecodable frame ({type(error).__name__}: {error})"
        ) from None
    if (
        not isinstance(message, tuple)
        or len(message) != 2
        or not isinstance(message[0], str)
        or not isinstance(message[1], dict)
    ):
        raise ProtocolError(
            "frame did not decode to a (kind, data) message",
            got=type(message).__name__,
        )
    return message


class FrameDecoder:
    """Incremental decoder: feed bytes, harvest complete messages.

    The coordinator owns one per connection.  ``feed`` never blocks and
    never raises on a *partial* frame — partial input stays buffered
    until the rest arrives; only a length prefix above
    :data:`MAX_FRAME_BYTES` or an undecodable body raises
    :class:`ProtocolError` (the caller drops the connection, exactly as
    it would a dead one).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[tuple[str, dict]]:
        self._buffer.extend(data)
        messages = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame length {length} exceeds the ceiling of "
                    f"{MAX_FRAME_BYTES}",
                    length=length,
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return messages
            payload = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            messages.append(decode_payload(payload))

    @property
    def pending_bytes(self) -> int:
        """Buffered bytes of the (possibly partial) next frame."""
        return len(self._buffer)


def send_message(sock: socket.socket, kind: str, **data: Any) -> None:
    """Blocking send of one message (the worker side)."""
    sock.sendall(encode_frame(kind, data))


def recv_message(sock: socket.socket) -> Optional[tuple[str, dict]]:
    """Blocking receive of one message; ``None`` on orderly EOF.

    EOF *inside* a frame raises :class:`ProtocolError` — the peer died
    mid-send, which callers must treat as a lost connection, not a
    clean shutdown.  Honors the socket's timeout (``socket.timeout``
    propagates so the worker's idle loop can heartbeat).
    """
    header = _recv_exact(sock, _HEADER.size, mid_frame=False)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the ceiling of {MAX_FRAME_BYTES}",
            length=length,
        )
    payload = _recv_exact(sock, length, mid_frame=True)
    if payload is None:  # pragma: no cover - mid_frame raises instead
        return None
    return decode_payload(payload)


def _recv_exact(
    sock: socket.socket, count: int, mid_frame: bool
) -> Optional[bytes]:
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            if chunks or mid_frame:
                raise ProtocolError(
                    "connection closed mid-frame (peer died while sending)",
                    received=len(chunks),
                    expected=count,
                )
            return None
        chunks.extend(chunk)
    return bytes(chunks)


def parse_address(address: str) -> tuple[str, int]:
    """``HOST:PORT`` -> ``(host, port)`` with a typed error on typos."""
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ConfigError(
            f"worker address must be HOST:PORT, got {address!r}",
            address=address,
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigError(
            f"worker address port must be an integer, got {port_text!r}",
            address=address,
        ) from None
    if not 0 < port < 65536:
        raise ConfigError(
            f"worker address port must be in 1..65535, got {port}",
            address=address,
            port=port,
        )
    return host, port


__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "FrameDecoder",
    "ProtocolError",
    "decode_payload",
    "encode_frame",
    "parse_address",
    "recv_message",
    "send_message",
]
