"""Multi-host distributed sweeps: coordinator, worker daemon, protocol.

The sweep-level answer to the multicluster paper's partitioning bet:
split the work across hosts, pay a bounded communication cost, and keep
the global result *exact*.  ``repro --executor distributed …`` runs the
coordinator (:class:`~repro.dist.coordinator.DistributedExecutor`);
``repro worker serve --connect HOST:PORT`` runs one host's worker
daemon (:class:`~repro.dist.worker.WorkerDaemon`); both speak the
length-prefixed TCP framing of :mod:`repro.dist.protocol`.  Host loss —
kill, stall, or partition — costs re-dispatched tasks, never rows:
results are deduplicated by content-fingerprint keys, worker shards
fold through ``repro journal merge``, and a coordinator with no usable
hosts degrades to the single-host executors rather than failing.
"""

from repro.dist.coordinator import DistributedExecutor
from repro.dist.protocol import PROTOCOL_VERSION, ProtocolError
from repro.dist.worker import WorkerDaemon, WorkerReport, serve_worker

__all__ = [
    "PROTOCOL_VERSION",
    "DistributedExecutor",
    "ProtocolError",
    "WorkerDaemon",
    "WorkerReport",
    "serve_worker",
]
