"""The distributed sweep coordinator: a multi-host ``SweepExecutor``.

:class:`DistributedExecutor` fans sweep tasks out to worker daemons
(:mod:`repro.dist.worker`) over the length-prefixed TCP protocol of
:mod:`repro.dist.protocol`, and treats *host loss* the way the
multicluster paper treats inter-cluster transfers: an expected,
bounded-cost event that must never corrupt the global result.

The fault-containment ledger:

==========================  ===========================================
observation                 response
==========================  ===========================================
connection EOF / error      the host died or partitioned
(``host_kill``,             (``host_partition``) — drop its lease,
socket dropped)             requeue its in-flight task under the seeded
                            backoff, count one host loss
task deadline expired       the host is wedged (``host_stall``) or its
                            result is lost in flight — same response,
                            plus the connection is closed so a late
                            result cannot double-count
idle lease expired          a silent host (no heartbeat inside
                            ``lease_timeout``) — deregistered before it
                            can be handed work
loss/redispatch budget      the **degradation cascade**: remaining
exhausted, or every host    tasks move to a local
gone, or nobody registered  :class:`SupervisedPoolExecutor` (which can
                            itself degrade to in-process serial), each
                            step recorded as an
                            :class:`ExecutorDegradation` event — the
                            sweep always completes, bit-identical
==========================  ===========================================

Exactness under all of that rests on two invariants shared with the
single-host executors: tasks are pure functions of their payloads (so a
re-dispatch, a different host, or the degraded path cannot change a
value), and results are deduplicated by **content-fingerprint row key**
— each task carries ``(key, fingerprint)`` derived from everything that
determines its value, a result is accepted only while its key is open,
and duplicates (a partitioned host's late delivery, two hosts racing
the same requeued task) are dropped and counted, never double-counted.

Workers journal finished rows into per-host shards
(``journal-<host>.jsonl``); :func:`repro.robustness.journal.merge_journals`
folds the shards — plus the coordinator's own journal — back into one
resume-equivalent directory, which is what makes a sharded sweep
restartable after losing *any* host, including the coordinator's.
"""

from __future__ import annotations

import collections
import itertools
import logging
import selectors
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.dist.protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    encode_frame,
)
from repro.errors import ConfigError
from repro.obs.heartbeat import TaskLiveness
from repro.obs.metrics import MetricsRegistry, dist_metrics
from repro.obs.spans import WallSpans
from repro.perf.executor import (
    MIN_TASK_TIMEOUT,
    ExecutorDegradation,
    SupervisedPoolExecutor,
    SweepExecutor,
    SweepTask,
    TaskResult,
    _ensure_worker_cache,
)
from repro.robustness.retry import RetryPolicy

log = logging.getLogger("repro.dist.coordinator")

#: Seconds an *idle* registered host may stay silent before its lease
#: expires (workers heartbeat at half this by default).
DEFAULT_LEASE_TIMEOUT = 10.0

#: Seconds the coordinator waits for ``min_hosts`` registrations before
#: dispatching (and before degrading, if nobody shows up at all).
DEFAULT_WAIT_FOR_HOSTS = 10.0

#: Blocking-send timeout towards a worker; a host that cannot even
#: drain a task frame inside this is treated as lost.
SEND_TIMEOUT_S = 10.0

#: Degradation cascade fallbacks selectable via ``fallback=``.
FALLBACK_KINDS = ("supervised", "serial")


def task_row_key(task: SweepTask) -> str:
    """The journal/dedup row key for one distributed task."""
    return f"part:{task.benchmark}:{task.part}"


def task_fingerprint(task: SweepTask) -> str:
    """Content fingerprint of everything that determines a task's value.

    Reuses :func:`~repro.robustness.journal.options_fingerprint` (the
    resume discipline) when the task carries real
    :class:`~repro.experiments.harness.EvaluationOptions`; tasks with
    opaque or absent options fall back to the identity triple alone.
    """
    from repro.perf.fingerprint import fingerprint

    options_print = ""
    if task.options is not None:
        from repro.robustness.journal import options_fingerprint

        try:
            options_print = options_fingerprint(task.options)
        except (AttributeError, TypeError):
            options_print = ""
    return fingerprint(
        ("dist-task/v1", task.benchmark, task.part, options_print)
    )


@dataclass
class HostLease:
    """One connected worker in the host registry."""

    host_id: int
    sock: socket.socket
    decoder: FrameDecoder = field(default_factory=FrameDecoder)
    #: The worker's self-reported host name (``None`` until registered).
    name: Optional[str] = None
    pid: Optional[int] = None
    #: Ticket of the task currently leased to this host, if any.
    busy_ticket: Optional[int] = None
    tasks_completed: int = 0

    @property
    def registered(self) -> bool:
        return self.name is not None

    @property
    def label(self) -> str:
        return self.name if self.name is not None else f"conn-{self.host_id}"


class DistributedExecutor(SweepExecutor):
    """Run sweep tasks on remote worker daemons, tolerating host loss.

    Implements the :class:`SweepExecutor` contract, so every sweep
    driver that speaks ``submit``/``poll``/``cancel`` distributes
    unchanged.  ``jobs`` sizes the *fallback* pool (capacity on the
    happy path is however many hosts register); ``task_fn`` must be a
    module-level callable — it crosses the wire by ``module:qualname``
    reference, never by pickle.
    """

    def __init__(
        self,
        task_fn: Callable[[tuple], Any],
        jobs: int,
        cache_dir=None,
        *,
        bind: str = "127.0.0.1",
        port: int = 0,
        task_timeout: float = MIN_TASK_TIMEOUT,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        redispatch_budget: int = 2,
        redispatch_policy: Optional[RetryPolicy] = None,
        min_hosts: int = 1,
        wait_for_hosts_s: float = DEFAULT_WAIT_FOR_HOSTS,
        max_host_losses: Optional[int] = None,
        fallback: str = "supervised",
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        poll_tick: float = 0.05,
        spans=None,
    ) -> None:
        if task_timeout <= 0:
            raise ConfigError(
                "distributed executor needs task_timeout > 0 seconds",
                task_timeout=task_timeout,
            )
        if lease_timeout <= 0:
            raise ConfigError(
                "distributed executor needs lease_timeout > 0 seconds",
                lease_timeout=lease_timeout,
            )
        if redispatch_budget < 0:
            raise ConfigError(
                "redispatch budget must be >= 0",
                redispatch_budget=redispatch_budget,
            )
        if min_hosts < 1:
            raise ConfigError(
                "distributed executor needs min_hosts >= 1",
                min_hosts=min_hosts,
            )
        if fallback not in FALLBACK_KINDS:
            raise ConfigError(
                f"unknown fallback {fallback!r}; valid: {FALLBACK_KINDS}",
                fallback=fallback,
            )
        self._task_fn = task_fn
        self._task_fn_spec = f"{task_fn.__module__}:{task_fn.__qualname__}"
        self._jobs = max(1, jobs)
        self._cache_dir = cache_dir
        self.task_timeout = task_timeout
        self.lease_timeout = lease_timeout
        self.redispatch_budget = redispatch_budget
        self._policy = redispatch_policy or RetryPolicy(
            max_attempts=redispatch_budget + 1,
            base_delay=0.05,
            max_delay=1.0,
            seed=0,
        )
        self.min_hosts = min_hosts
        self.wait_for_hosts_s = wait_for_hosts_s
        self.max_host_losses = (
            max_host_losses
            if max_host_losses is not None
            else 2 * min_hosts + 2
        )
        self.fallback = fallback
        self.metrics = metrics if metrics is not None else dist_metrics()
        self._clock = clock
        self._tick = poll_tick
        self._spans = spans
        self._wall = WallSpans(spans, clock=clock)

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((bind, port))
        except OSError as error:
            self._listener.close()
            raise ConfigError(
                f"cannot bind coordinator to {bind}:{port}: {error}",
                bind=bind,
                port=port,
            ) from None
        self._listener.listen(64)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, None)

        self._hosts: dict[int, HostLease] = {}
        self._idle: list[int] = []
        self._host_seq = itertools.count(1)
        self._open: dict[str, SweepTask] = {}
        self._pending: collections.deque = collections.deque()
        self._dispatches: dict[str, int] = {}
        self._tickets: dict[int, str] = {}
        self._ticket_seq = itertools.count(1)
        self._ready: list[TaskResult] = []
        self._completed_fingerprints: set[str] = set()
        self._task_liveness = TaskLiveness(clock=clock)  # keyed by ticket
        self._host_liveness = TaskLiveness(clock=clock)  # keyed by host_id
        self._events: list[ExecutorDegradation] = []
        self._inner: Optional[SweepExecutor] = None
        self._serial_mode = False
        self._hosts_awaited = False
        self._closed = False
        self.host_losses = 0
        self.redispatches = 0

    # -------------------------------------------------------------- address
    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) workers should ``--connect`` to."""
        return self._listener.getsockname()

    @property
    def registered_hosts(self) -> list[str]:
        return [
            lease.label for lease in self._hosts.values() if lease.registered
        ]

    @property
    def degradations(self) -> list[ExecutorDegradation]:
        events = list(self._events)
        if self._inner is not None and self._inner.degradation is not None:
            events.append(self._inner.degradation)
        return events

    # ------------------------------------------------------------ lifecycle
    def submit(self, task: SweepTask) -> None:
        token = task.token
        if token in self._open:
            raise ConfigError(
                f"task {token!r} is already submitted; sweep tasks must be "
                "unique per (benchmark, part)",
                token=token,
            )
        self._open[token] = task
        self._dispatches.setdefault(token, 0)
        if self._inner is not None:
            self._inner.submit(task)
        else:
            self._pending.append((token, 0.0))

    @property
    def outstanding(self) -> int:
        return len(self._open)

    def poll(self, timeout: Optional[float] = None) -> list[TaskResult]:
        results: list[TaskResult] = []
        started = self._clock()
        while not results and self.outstanding:
            if self._inner is not None:
                results.extend(self._poll_inner(timeout))
            elif self._serial_mode:
                results.extend(self._serial_step())
            else:
                self._await_hosts()
                if self._inner is not None or self._serial_mode:
                    continue
                self._service(self._tick)
                self._expire_host_leases()
                self._expire_overdue_tasks()
                self._dispatch_ready()
                if self._ready:
                    results.extend(self._ready)
                    self._ready.clear()
            if timeout is not None and self._clock() - started >= timeout:
                break
        return results

    def cancel(self) -> int:
        cancelled = len(self._open)
        self._open.clear()
        self._pending.clear()
        if self._inner is not None:
            self._inner.cancel()
        self._shutdown_network()
        return cancelled

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._inner is not None:
            self._inner.close()
        self._shutdown_network()

    # ------------------------------------------------------- host registry
    def _await_hosts(self) -> None:
        """Block (servicing the socket) until enough hosts registered.

        Runs once, lazily, at the first poll: workers race the
        coordinator's startup, so dispatch waits up to
        ``wait_for_hosts_s`` for ``min_hosts`` registrations.  Nobody at
        the deadline means the deployment is broken — degrade
        immediately rather than hang a sweep that could run locally.
        """
        if self._hosts_awaited:
            return
        self._hosts_awaited = True
        deadline = self._clock() + self.wait_for_hosts_s
        while (
            len(self.registered_hosts) < self.min_hosts
            and self._clock() < deadline
        ):
            self._service(self._tick)
        registered = len(self.registered_hosts)
        if registered == 0:
            self._degrade(
                reason="no-hosts",
                detail=(
                    f"no worker registered within {self.wait_for_hosts_s:.1f}s;"
                    " is 'repro worker serve --connect "
                    f"{self.address[0]}:{self.address[1]}' running?"
                ),
            )
        elif registered < self.min_hosts:
            log.warning(
                "dispatching with %d host(s), below the requested minimum "
                "of %d", registered, self.min_hosts,
            )

    def _accept_connection(self) -> None:
        try:
            conn, _addr = self._listener.accept()
        except OSError:  # pragma: no cover - accept raced a close
            return
        conn.settimeout(SEND_TIMEOUT_S)
        lease = HostLease(host_id=next(self._host_seq), sock=conn)
        self._hosts[lease.host_id] = lease
        self._selector.register(conn, selectors.EVENT_READ, lease)

    def _service(self, budget_s: float) -> None:
        """One bounded pass of the socket loop: accept + read + handle."""
        if self._closed:
            return
        for key, _mask in self._selector.select(timeout=budget_s):
            if key.data is None:
                self._accept_connection()
            else:
                self._read_host(key.data)
            if self._inner is not None or self._serial_mode:
                return

    def _read_host(self, lease: HostLease) -> None:
        try:
            data = lease.sock.recv(1 << 16)
        except (socket.timeout, BlockingIOError):  # pragma: no cover
            return
        except OSError as error:
            self._lose_host(lease, f"connection error ({error})")
            return
        if not data:
            self._lose_host(lease, "connection closed")
            return
        try:
            messages = lease.decoder.feed(data)
        except ProtocolError as error:
            self._lose_host(lease, f"protocol violation ({error.message})")
            return
        for kind, payload in messages:
            self._handle(lease, kind, payload)
            if lease.host_id not in self._hosts:
                return  # the handler dropped this host

    def _handle(self, lease: HostLease, kind: str, payload: dict) -> None:
        if kind == "register":
            version = payload.get("version")
            if version != PROTOCOL_VERSION:
                self._send(
                    lease,
                    encode_frame("goodbye", {"reason": "version skew"}),
                )
                self._drop_connection(lease, f"version skew ({version})")
                return
            lease.name = str(payload.get("host") or lease.label)
            lease.pid = payload.get("pid")
            if not self._send(
                lease, encode_frame("welcome", {"version": PROTOCOL_VERSION})
            ):
                return
            self._idle.append(lease.host_id)
            self._host_liveness.start(lease.host_id, self.lease_timeout)
            self._wall.begin(
                ("host", lease.host_id), "host_lease", lease.name, pid=lease.pid
            )
            self.metrics.counter("dist_hosts_registered").inc()
            self.metrics.counter(
                "dist_host_tasks_completed", host=lease.name
            )  # pre-register the per-host series at zero
            log.info(
                "host %s registered (pid %s); %d host(s) attached",
                lease.name, lease.pid, len(self.registered_hosts),
            )
            return
        if not lease.registered:
            self._drop_connection(lease, f"{kind!r} before registration")
            return
        if kind == "heartbeat":
            self._renew_lease(lease)
            return
        if kind == "result":
            self._handle_result(lease, payload)
            return
        log.warning("ignoring unknown frame %r from host %s", kind, lease.label)

    def _renew_lease(self, lease: HostLease) -> None:
        # A busy host's lease is governed by its task's deadline (plus
        # slack); an idle one must keep heartbeating.
        if lease.host_id not in self._hosts:
            return
        if lease.busy_ticket is not None:
            self._host_liveness.renew(
                lease.host_id, self.task_timeout + self.lease_timeout
            )
        else:
            self._host_liveness.renew(lease.host_id, self.lease_timeout)

    def _handle_result(self, lease: HostLease, payload: dict) -> None:
        ticket = payload.get("ticket")
        self._task_liveness.finish(ticket)
        self._wall.end(
            ("ticket", ticket), ok=bool(payload.get("ok", False)), host=lease.label
        )
        if lease.busy_ticket == ticket:
            lease.busy_ticket = None
            if lease.host_id in self._hosts:
                self._idle.append(lease.host_id)
        self._renew_lease(lease)
        token = self._tickets.get(ticket)
        if token is None or token not in self._open:
            # Cross-host dedup: the row key already completed elsewhere
            # (a requeued task raced its original host, or a partition
            # healed late).  Content-fingerprint keys make this a safe
            # drop, never a double count.
            self.metrics.counter("dist_duplicate_results").inc()
            log.info(
                "dropping duplicate result from host %s (ticket %s)",
                lease.label, ticket,
            )
            return
        if not payload.get("ok", False):
            log.warning(
                "task %s failed on host %s: %s",
                token, lease.label, payload.get("error"),
            )
            self._requeue(
                token, f"failed on host {lease.label}: {payload.get('error')}"
            )
            return
        task = self._open.pop(token)
        self._completed_fingerprints.add(task_fingerprint(task))
        lease.tasks_completed += 1
        self.metrics.counter("dist_tasks_completed").inc()
        self.metrics.counter(
            "dist_host_tasks_completed", host=lease.label
        ).inc()
        self._ready.append(
            TaskResult(
                task=task,
                value=payload.get("value"),
                dispatches=self._dispatches.get(token, 1),
            )
        )

    def _send(self, lease: HostLease, frame: bytes) -> bool:
        try:
            lease.sock.sendall(frame)
            return True
        except OSError as error:
            self._lose_host(lease, f"send failed ({error})")
            return False

    def _drop_connection(self, lease: HostLease, reason: str) -> None:
        """Remove a connection that never counted as a host (no loss)."""
        log.warning("dropping connection %s: %s", lease.label, reason)
        self._forget(lease)

    def _forget(self, lease: HostLease) -> None:
        self._hosts.pop(lease.host_id, None)
        if lease.host_id in self._idle:
            self._idle.remove(lease.host_id)
        self._host_liveness.finish(lease.host_id)
        try:
            self._selector.unregister(lease.sock)
        except (KeyError, ValueError):  # pragma: no cover - already gone
            pass
        try:
            lease.sock.close()
        except OSError:  # pragma: no cover - already dead
            pass

    def _lose_host(self, lease: HostLease, reason: str) -> None:
        """A registered host died/partitioned/wedged: account + requeue."""
        if lease.host_id not in self._hosts:
            return
        registered = lease.registered
        ticket = lease.busy_ticket
        self._forget(lease)
        if not registered:
            return  # an unregistered connection is not a host loss
        self.host_losses += 1
        self.metrics.counter("dist_host_losses").inc()
        self.metrics.counter("dist_host_losses", host=lease.label).inc()
        self._wall.end(
            ("host", lease.host_id),
            ok=False,
            reason=reason,
            tasks_completed=lease.tasks_completed,
        )
        log.warning("lost host %s: %s", lease.label, reason)
        if ticket is not None:
            self._task_liveness.finish(ticket)
            self._wall.end(("ticket", ticket), ok=False, reason=reason)
            token = self._tickets.get(ticket)
            if token is not None and token in self._open:
                self._requeue(token, reason)
        if self._inner is not None or self._serial_mode:
            return
        if self.host_losses > self.max_host_losses:
            self._degrade(
                reason="host-circuit-breaker",
                detail=(
                    f"{self.host_losses} host losses exceed the budget of "
                    f"{self.max_host_losses}"
                ),
            )
        elif not self.registered_hosts and self._open:
            self._degrade(
                reason="all-hosts-lost",
                detail=(
                    f"every registered host is gone with "
                    f"{len(self._open)} task(s) outstanding"
                ),
            )

    # ------------------------------------------------------------ deadlines
    def _expire_host_leases(self) -> None:
        for host_id in self._host_liveness.overdue():
            lease = self._hosts.get(host_id)
            if lease is None:  # pragma: no cover - raced removal
                self._host_liveness.finish(host_id)
                continue
            self._lose_host(
                lease,
                f"lease expired (silent for {self.lease_timeout:.1f}s)",
            )
            self.metrics.counter("dist_lease_expirations").inc()
            if self._inner is not None or self._serial_mode:
                return

    def _expire_overdue_tasks(self) -> None:
        for ticket in self._task_liveness.overdue():
            lease = next(
                (
                    entry
                    for entry in self._hosts.values()
                    if entry.busy_ticket == ticket
                ),
                None,
            )
            self.metrics.counter("dist_task_deadline_expirations").inc()
            if lease is not None:
                # Close the connection too: a stalled host that wakes up
                # must not deliver a late result over a live socket.
                self._lose_host(
                    lease,
                    f"task deadline ({self.task_timeout:.1f}s) expired "
                    "(wedged host or result lost in flight)",
                )
            else:  # pragma: no cover - ticket raced its host's removal
                self._task_liveness.finish(ticket)
                token = self._tickets.get(ticket)
                if token is not None and token in self._open:
                    self._requeue(token, "task deadline expired")
            if self._inner is not None or self._serial_mode:
                return

    # ------------------------------------------------------------- dispatch
    def _dispatch_ready(self) -> None:
        now = self._clock()
        waiting = []
        while self._pending and self._idle:
            token, not_before = self._pending.popleft()
            if token not in self._open:
                continue  # completed while queued (late duplicate race)
            if not_before > now:
                waiting.append((token, not_before))
                continue
            host_id = self._idle.pop()
            lease = self._hosts[host_id]
            task = self._open[token]
            ticket = next(self._ticket_seq)
            dispatch = self._dispatches[token]
            self._tickets[ticket] = token
            self._dispatches[token] = dispatch + 1
            body = {
                "ticket": ticket,
                "benchmark": task.benchmark,
                "part": task.part,
                "payload": task.payload(),
                "dispatch": dispatch,
                "fn": self._task_fn_spec,
                "key": task_row_key(task),
                "fingerprint": task_fingerprint(task),
            }
            if self._spans is not None and self._spans.trace_id:
                # Workers journal their own span shards: the frame
                # carries the trace id plus a module:qualname builder
                # reference (same discipline as ``fn`` — never pickle).
                body["trace_id"] = self._spans.trace_id
                body["span_fn"] = "repro.obs.spans:sweep_task_value_spans"
            frame = encode_frame("task", body)
            if not self._send(lease, frame):
                # _lose_host already requeued nothing (task not yet
                # leased to it); put the token back for another host.
                del self._tickets[ticket]
                self._dispatches[token] = dispatch
                if self._inner is not None or self._serial_mode:
                    return  # the failed send tripped the cascade
                self._pending.append((token, 0.0))
                continue
            lease.busy_ticket = ticket
            self._task_liveness.start(ticket, self.task_timeout)
            self._wall.begin(
                ("ticket", ticket),
                "dispatch",
                token,
                host=lease.label,
                dispatch=dispatch,
            )
            self._renew_lease(lease)
            self.metrics.counter("dist_dispatches").inc()
        self._pending.extend(waiting)

    def _requeue(self, token: str, reason: str) -> None:
        used = self._dispatches.get(token, 0)
        if used > self.redispatch_budget:
            self._degrade(
                reason="host-circuit-breaker",
                detail=(
                    f"task {token} lost {used} dispatch(es) ({reason}); "
                    f"re-dispatch budget {self.redispatch_budget} exhausted"
                ),
            )
            return
        self.redispatches += 1
        self.metrics.counter("dist_redispatches").inc()
        self._wall.instant("requeue", token, reason=reason)
        delay = 0.0
        schedule = self._policy.schedule(token)
        if schedule:
            delay = schedule[min(max(used - 1, 0), len(schedule) - 1)]
        self._pending.append((token, self._clock() + delay))

    # ----------------------------------------------------------- degrading
    def _degrade(self, reason: str, detail: str) -> None:
        """Step down the cascade: remote hosts -> local fallback.

        ``fallback="supervised"`` hands every open task to a local
        :class:`SupervisedPoolExecutor` (whose own circuit breaker
        provides the final serial step); ``fallback="serial"`` skips
        straight to in-process execution.  Either way the cascade is
        recorded as :class:`ExecutorDegradation` events and the sweep
        finishes with bit-identical rows.
        """
        remaining = len(self._open)
        event = ExecutorDegradation(
            reason=reason,
            detail=detail,
            worker_deaths=self.host_losses,
            redispatches=self.redispatches,
            remaining_tasks=remaining,
        )
        self._events.append(event)
        if self.degradation is None:
            self.degradation = event
        self.metrics.counter("dist_degradations").inc()
        self._wall.instant(
            "degradation", "distributed", detail=detail, remaining=remaining
        )
        log.warning("distributed executor degrading (%s): %s", reason, detail)
        self._shutdown_network()
        self._pending.clear()
        if self.fallback == "supervised" and remaining:
            self._inner = SupervisedPoolExecutor(
                self._task_fn,
                self._jobs,
                self._cache_dir,
                task_timeout=self.task_timeout,
                redispatch_budget=self.redispatch_budget,
                redispatch_policy=self._policy,
                spans=self._spans,
            )
            for task in self._open.values():
                self._inner.submit(task)
        else:
            self._serial_mode = True
            self._pending = collections.deque(
                (token, 0.0) for token in self._open
            )
            _ensure_worker_cache(self._cache_dir)

    def _poll_inner(self, timeout: Optional[float]) -> list[TaskResult]:
        results = []
        for result in self._inner.poll(timeout=timeout or self._tick):
            self._open.pop(result.task.token, None)
            self._completed_fingerprints.add(task_fingerprint(result.task))
            self.metrics.counter("dist_tasks_completed").inc()
            results.append(result)
        return results

    def _serial_step(self) -> list[TaskResult]:
        while self._pending:
            token, _ = self._pending.popleft()
            task = self._open.pop(token, None)
            if task is None:
                continue
            self._dispatches[token] = self._dispatches.get(token, 0) + 1
            value = self._task_fn(task.payload())
            self._completed_fingerprints.add(task_fingerprint(task))
            self.metrics.counter("dist_tasks_completed").inc()
            return [
                TaskResult(
                    task=task, value=value, dispatches=self._dispatches[token]
                )
            ]
        if self._open:  # pragma: no cover - defensive: open without pending
            token, task = next(iter(self._open.items()))
            del self._open[token]
            return [TaskResult(task=task, value=self._task_fn(task.payload()))]
        return []

    # ------------------------------------------------------------- teardown
    def _shutdown_network(self) -> None:
        self._wall.close(reason="shutdown")
        goodbye = encode_frame("shutdown", {})
        for lease in list(self._hosts.values()):
            if lease.registered:
                try:
                    lease.sock.sendall(goodbye)
                except OSError:
                    pass
            self._forget(lease)
        self._idle.clear()
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass


__all__ = [
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_WAIT_FOR_HOSTS",
    "FALLBACK_KINDS",
    "DistributedExecutor",
    "HostLease",
    "task_fingerprint",
    "task_row_key",
]
