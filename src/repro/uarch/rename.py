"""Register renaming: per-cluster map tables, free lists, and scoreboard.

Section 4.1: "As instructions are inserted into a dispatch queue, the
architectural registers named by each are renamed to the corresponding
physical registers."  Each cluster renames only the architectural
registers it can access (its local registers plus the globals); a global
register therefore occupies one physical register *per cluster*
(Section 2.1: "two physical registers are required to maintain the value
of a global register").

Physical registers are recycled at retirement: retiring an instruction
frees the register previously mapped to its destination.  A replay
exception unwinds mappings through the per-instruction undo log.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.isa.registers import Register, RegisterClass


class RenameFile:
    """Rename state for one register class within one cluster."""

    def __init__(self, num_physical: int, initial_arch: Iterable[Register]) -> None:
        self.num_physical = num_physical
        self.mapping: dict[int, int] = {}
        self.ready: list[bool] = [False] * num_physical
        #: uops waiting on each physical register becoming ready.
        self.waiters: list[list] = [[] for _ in range(num_physical)]
        mapped = [reg for reg in initial_arch if not reg.is_zero]
        if len(mapped) > num_physical:
            raise ValueError("more architectural registers than physical")
        for next_phys, reg in enumerate(mapped):
            self.mapping[reg.uid] = next_phys
            self.ready[next_phys] = True
        self.free: list[int] = list(range(num_physical - 1, len(mapped) - 1, -1))

    @property
    def free_count(self) -> int:
        return len(self.free)

    def lookup(self, reg: Register) -> int:
        """Current physical register for an architectural source."""
        return self.mapping[reg.uid]

    def allocate(self, reg: Register) -> tuple[int, Optional[int]]:
        """Map ``reg`` to a fresh physical register.

        Returns ``(new_phys, previous_phys)``; the caller records the pair
        for undo/retirement.  Raises ``IndexError`` when the free list is
        empty — callers must check :attr:`free_count` first.
        """
        phys = self.free.pop()
        prev = self.mapping.get(reg.uid)
        self.mapping[reg.uid] = phys
        self.ready[phys] = False
        self.waiters[phys].clear()
        return phys, prev

    def release(self, phys: int) -> None:
        """Return a physical register to the free list."""
        self.ready[phys] = False
        self.waiters[phys].clear()
        self.free.append(phys)

    def undo(self, reg: Register, new_phys: int, prev_phys: Optional[int]) -> None:
        """Reverse an :meth:`allocate` (replay squash)."""
        if prev_phys is None:
            self.mapping.pop(reg.uid, None)
        else:
            self.mapping[reg.uid] = prev_phys
        self.release(new_phys)

    def mark_ready(self, phys: int) -> list:
        """Mark a physical register ready; returns the uops to wake."""
        self.ready[phys] = True
        woken = self.waiters[phys]
        self.waiters[phys] = []
        return woken


class ClusterRename:
    """Both register classes of one cluster."""

    def __init__(
        self,
        int_physical: int,
        fp_physical: int,
        accessible: Iterable[Register],
    ) -> None:
        accessible = list(accessible)
        self.files: dict[RegisterClass, RenameFile] = {
            RegisterClass.INT: RenameFile(
                int_physical,
                [r for r in accessible if r.rclass is RegisterClass.INT],
            ),
            RegisterClass.FP: RenameFile(
                fp_physical,
                [r for r in accessible if r.rclass is RegisterClass.FP],
            ),
        }
        #: Direct per-class aliases of :attr:`files` — the batched engine
        #: selects on an ``is RegisterClass.INT`` check instead of hashing
        #: the enum for a dict lookup on every rename-table touch.
        self.file_int = self.files[RegisterClass.INT]
        self.file_fp = self.files[RegisterClass.FP]

    def file_for(self, reg: Register) -> RenameFile:
        return self.files[reg.rclass]

    def can_allocate(self, int_needed: int, fp_needed: int) -> bool:
        return (
            self.files[RegisterClass.INT].free_count >= int_needed
            and self.files[RegisterClass.FP].free_count >= fp_needed
        )
