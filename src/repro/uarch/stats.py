"""Simulation statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.distribution import Scenario
from repro.uarch.buffers import BufferStats


@dataclass
class ClusterStats:
    """Per-cluster counters."""

    issued: int = 0
    issued_by_class: dict[str, int] = field(default_factory=dict)
    queue_full_stalls: int = 0
    regfile_full_stalls: int = 0
    peak_queue_occupancy: int = 0
    #: Transfer-buffer statistics, copied from the live buffers at
    #: ``Processor.finalize`` (``None`` until then; single-cluster
    #: machines get the all-zero stats of their zero-capacity buffers).
    operand_buffer: Optional[BufferStats] = None
    result_buffer: Optional[BufferStats] = None

    def note_issue(self, class_name: str) -> None:
        self.issued += 1
        self.issued_by_class[class_name] = self.issued_by_class.get(class_name, 0) + 1

    def as_dict(self) -> dict:
        """Stable, JSON-native serialization of *every* field."""

        def _buffer(stats: Optional[BufferStats]) -> Optional[dict]:
            if stats is None:
                return None
            return {
                "allocations": stats.allocations,
                "full_stall_cycles": stats.full_stall_cycles,
                "peak_occupancy": stats.peak_occupancy,
            }

        return {
            "issued": self.issued,
            "issued_by_class": dict(sorted(self.issued_by_class.items())),
            "queue_full_stalls": self.queue_full_stalls,
            "regfile_full_stalls": self.regfile_full_stalls,
            "peak_queue_occupancy": self.peak_queue_occupancy,
            "operand_buffer": _buffer(self.operand_buffer),
            "result_buffer": _buffer(self.result_buffer),
        }


@dataclass
class SimulationStats:
    """Everything a run reports.

    ``cycles`` is the paper's performance metric ("the number of
    (simulated) clock cycles required to execute the application").
    """

    cycles: int = 0
    instructions: int = 0
    uops_executed: int = 0
    dual_distributed: int = 0
    by_scenario: dict[Scenario, int] = field(default_factory=dict)
    clusters: list[ClusterStats] = field(default_factory=list)

    # Front-end behaviour.
    fetch_stall_cycles: int = 0
    dispatch_stall_cycles: int = 0
    mispredict_stall_cycles: int = 0

    # Branch prediction.
    branch_predictions: int = 0
    branch_mispredictions: int = 0

    # Caches.  ``*_merged_misses`` count misses that merged with an
    # outstanding fill to the same line (the inverted-MSHR behaviour of
    # Section 4.1) — they are a subset of ``*_misses``.
    icache_accesses: int = 0
    icache_misses: int = 0
    icache_merged_misses: int = 0
    dcache_accesses: int = 0
    dcache_misses: int = 0
    dcache_merged_misses: int = 0

    # Multicluster overheads.
    operand_forwards: int = 0
    result_forwards: int = 0
    replay_exceptions: int = 0
    replay_squashed_instructions: int = 0

    # Dynamic register reassignment (Section 6 extension).
    reassignments: int = 0
    reassignment_stall_cycles: int = 0

    # Issue-order disorder: mean |issue rank - program rank| of issued uops.
    issue_disorder_accum: float = 0.0
    issue_disorder_samples: int = 0

    # Observability attachments (repro.obs), populated only for runs
    # that opted in; ``None`` otherwise.
    #: Stall-attribution payload (``obs.stall.StallAccounting.as_dict``).
    stall_attribution: Optional[dict] = None
    #: Metrics payload (``obs.metrics.PipelineMetrics.payload``).
    metrics: Optional[dict] = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def branch_accuracy(self) -> float:
        if self.branch_predictions == 0:
            return 1.0
        return 1.0 - self.branch_mispredictions / self.branch_predictions

    @property
    def dcache_miss_rate(self) -> float:
        return self.dcache_misses / self.dcache_accesses if self.dcache_accesses else 0.0

    @property
    def icache_miss_rate(self) -> float:
        return self.icache_misses / self.icache_accesses if self.icache_accesses else 0.0

    @property
    def dual_fraction(self) -> float:
        return self.dual_distributed / self.instructions if self.instructions else 0.0

    @property
    def issue_disorder(self) -> float:
        if self.issue_disorder_samples == 0:
            return 0.0
        return self.issue_disorder_accum / self.issue_disorder_samples

    def as_dict(self) -> dict:
        """Stable, JSON-native serialization of *every* counter.

        This is the fingerprint surface for bit-identity checks between
        serial and parallel sweeps: any field added to the stats must
        show up here (and the parallel-sweep identity test will fail if
        a worker path drops it).  ``by_scenario`` is keyed by scenario
        *name* so the payload round-trips through JSON.
        """
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "uops_executed": self.uops_executed,
            "dual_distributed": self.dual_distributed,
            "by_scenario": {
                scenario.name: count
                for scenario, count in sorted(
                    self.by_scenario.items(), key=lambda item: item[0].value
                )
            },
            "clusters": [c.as_dict() for c in self.clusters],
            "fetch_stall_cycles": self.fetch_stall_cycles,
            "dispatch_stall_cycles": self.dispatch_stall_cycles,
            "mispredict_stall_cycles": self.mispredict_stall_cycles,
            "branch_predictions": self.branch_predictions,
            "branch_mispredictions": self.branch_mispredictions,
            "icache_accesses": self.icache_accesses,
            "icache_misses": self.icache_misses,
            "icache_merged_misses": self.icache_merged_misses,
            "dcache_accesses": self.dcache_accesses,
            "dcache_misses": self.dcache_misses,
            "dcache_merged_misses": self.dcache_merged_misses,
            "operand_forwards": self.operand_forwards,
            "result_forwards": self.result_forwards,
            "replay_exceptions": self.replay_exceptions,
            "replay_squashed_instructions": self.replay_squashed_instructions,
            "reassignments": self.reassignments,
            "reassignment_stall_cycles": self.reassignment_stall_cycles,
            "issue_disorder_accum": self.issue_disorder_accum,
            "issue_disorder_samples": self.issue_disorder_samples,
            "stall_attribution": self.stall_attribution,
            "metrics": self.metrics,
        }

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"cycles                 {self.cycles}",
            f"instructions           {self.instructions}",
            f"IPC                    {self.ipc:.3f}",
            f"dual-distributed       {self.dual_distributed} ({100 * self.dual_fraction:.1f}%)",
            f"branch accuracy        {100 * self.branch_accuracy:.2f}%",
            f"icache miss rate       {100 * self.icache_miss_rate:.2f}% "
            f"({self.icache_merged_misses} merged)",
            f"dcache miss rate       {100 * self.dcache_miss_rate:.2f}% "
            f"({self.dcache_merged_misses} merged)",
            f"operand forwards       {self.operand_forwards}",
            f"result forwards        {self.result_forwards}",
            f"replay exceptions      {self.replay_exceptions}",
            f"issue disorder         {self.issue_disorder:.2f}",
        ]
        for i, c in enumerate(self.clusters):
            lines.append(
                f"cluster {i}: issued {c.issued}, queue-full stalls "
                f"{c.queue_full_stalls}, regfile stalls {c.regfile_full_stalls}"
            )
        return "\n".join(lines)
