"""Cycle-level microarchitecture model (Section 4.1's machines)."""

from repro.uarch.branch_predictor import McFarlingPredictor, PredictorStats
from repro.uarch.buffers import TransferBuffer
from repro.uarch.caches import Cache, CacheStats
from repro.uarch.config import (
    CacheConfig,
    ClusterConfig,
    DUAL_ISSUE_RULES,
    IssueRules,
    LatencyModel,
    PredictorConfig,
    ProcessorConfig,
    SINGLE_ISSUE_RULES,
    default_assignment_for,
    dual_cluster_2way_config,
    dual_cluster_config,
    single_cluster_4way_config,
    single_cluster_config,
    with_buffer_entries,
)
from repro.uarch.pipeline_view import build_rows, render_pipeline
from repro.uarch.processor import (
    Processor,
    SimulationError,
    SimulationResult,
    simulate,
)
from repro.uarch.rename import ClusterRename, RenameFile
from repro.uarch.stats import ClusterStats, SimulationStats
from repro.uarch.uop import RobEntry, Role, Uop, UopState

__all__ = [
    "McFarlingPredictor",
    "PredictorStats",
    "TransferBuffer",
    "Cache",
    "CacheStats",
    "CacheConfig",
    "ClusterConfig",
    "DUAL_ISSUE_RULES",
    "IssueRules",
    "LatencyModel",
    "PredictorConfig",
    "ProcessorConfig",
    "SINGLE_ISSUE_RULES",
    "default_assignment_for",
    "dual_cluster_2way_config",
    "dual_cluster_config",
    "single_cluster_4way_config",
    "single_cluster_config",
    "with_buffer_entries",
    "build_rows",
    "render_pipeline",
    "Processor",
    "SimulationError",
    "SimulationResult",
    "simulate",
    "ClusterRename",
    "RenameFile",
    "ClusterStats",
    "SimulationStats",
    "RobEntry",
    "Role",
    "Uop",
    "UopState",
]
