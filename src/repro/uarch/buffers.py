"""Operand and result transfer buffers (Section 2.1, Figure 1).

Each cluster owns one operand transfer buffer (filled by slave copies in
the *other* cluster forwarding source operands to masters here) and one
result transfer buffer (filled by masters in the other cluster forwarding
results to slaves here).  The paper keeps them separate "to reduce
implementation complexity and to reduce the number of times an
instruction-replay exception is required to free up a buffer entry".

Entries are identified by the dynamic instruction they serve; the paper's
associative search by instruction ID is a dictionary here.  Occupancy
protocol (Section 2.1 scenarios):

* operand entry — allocated when the slave issues, freed the cycle after
  the master reads it (master issue + 1);
* result entry — allocated when the master issues, freed after the slave
  reads it (slave issue + 1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass


@dataclass
class BufferStats:
    allocations: int = 0
    full_stall_cycles: int = 0
    peak_occupancy: int = 0


class TransferBuffer:
    """One transfer buffer (operand or result) of one cluster."""

    def __init__(self, entries: int, name: str) -> None:
        self.capacity = entries
        self.name = name
        #: seq of the owning dynamic instruction -> allocation cycle.
        self.entries: dict[int, int] = {}
        #: min-heap of (free cycle, seq) for scheduled releases.
        self._pending_free: list[tuple[int, int]] = []
        self.stats = BufferStats()

    @property
    def occupancy(self) -> int:
        return len(self.entries)

    @property
    def is_full(self) -> bool:
        return len(self.entries) >= self.capacity

    def allocate(self, seq: int, cycle: int) -> None:
        if seq in self.entries:
            # A later copy of the same instruction (an N-cluster plan can
            # ship operands from several slaves to one master) shares the
            # entry; the packet keeps its original allocation cycle.
            self.stats.allocations += 1
            return
        if self.is_full:
            raise RuntimeError(f"{self.name} overflow")
        self.entries[seq] = cycle
        self.stats.allocations += 1
        self.stats.peak_occupancy = max(self.stats.peak_occupancy, len(self.entries))

    def free_at(self, seq: int, cycle: int) -> None:
        """Schedule entry ``seq`` to be reusable starting at ``cycle``."""
        heapq.heappush(self._pending_free, (cycle, seq))

    def free_now(self, seq: int) -> None:
        self.entries.pop(seq, None)

    def tick(self, cycle: int) -> None:
        """Release every entry whose free cycle has arrived (<= ``cycle``)."""
        pending = self._pending_free
        while pending and pending[0][0] <= cycle:
            _, seq = heapq.heappop(pending)
            self.entries.pop(seq, None)

    def squash_younger(self, seq: int) -> None:
        """Drop entries owned by instructions younger than ``seq``."""
        for owner in [s for s in self.entries if s > seq]:
            del self.entries[owner]
        self._pending_free = [
            (cycle, s) for cycle, s in self._pending_free if s <= seq
        ]
        heapq.heapify(self._pending_free)
