"""Micro-operations: the per-cluster copies of a dynamic instruction.

A single-distributed instruction becomes one master uop.  A
dual-distributed instruction becomes a master uop (does the computation)
plus a slave uop (forwards an operand and/or receives the result) — the
copies of Section 2.1.  Uops carry all per-cluster execution state; the
shared, per-dynamic-instruction state lives in :class:`RobEntry`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.isa.opcodes import InstrClass, Opcode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.distribution import DistributionPlan
    from repro.workloads.trace import DynamicInstruction


class Role(enum.Enum):
    MASTER = "master"
    SLAVE = "slave"


class UopState(enum.Enum):
    WAITING = "waiting"    # in the dispatch queue, operands outstanding
    READY = "ready"        # eligible for issue
    ISSUED = "issued"      # executing
    SUSPENDED = "suspended"  # scenario-5 slave: operand sent, awaiting result
    DONE = "done"


class Uop:
    """One cluster-local copy of a dynamic instruction."""

    __slots__ = (
        "entry",
        "role",
        "cluster",
        "opcode",
        "iclass",
        "src_phys",
        "wait_count",
        "dest_phys",
        "state",
        "issue_cycle",
        "done_cycle",
        "partner",
        "needs_operand_entry",
        "needs_result_entry",
        "writes_dest",
        "forwards_result_only",
        "intercopy_pending",
        "store_dep",
        "blocked_on_buffer_since",
        "lat0",
        "fastflags",
    )

    def __init__(
        self,
        entry: "RobEntry",
        role: Role,
        cluster: int,
        opcode: Opcode,
    ) -> None:
        self.entry = entry
        self.role = role
        self.cluster = cluster
        self.opcode = opcode
        self.iclass: InstrClass = opcode.iclass
        #: (rclass, phys index) pairs this uop reads in its own cluster.
        self.src_phys: list[tuple[object, int]] = []
        #: Outstanding wakeups (unready sources + inter-copy token + store dep).
        self.wait_count = 0
        #: (rclass, phys index) written in this cluster, if any.
        self.dest_phys: Optional[tuple[object, int]] = None
        self.state = UopState.WAITING
        self.issue_cycle = -1
        self.done_cycle = -1
        #: The other copy of a dual-distributed instruction.
        self.partner: Optional["Uop"] = None
        #: Slave forwarding operand(s): needs an operand-transfer-buffer
        #: entry in the *master's* cluster at issue.
        self.needs_operand_entry = False
        #: Master forwarding its result: needs a result-transfer-buffer
        #: entry in the *slave's* cluster at issue.
        self.needs_result_entry = False
        #: Whether this uop writes its ``dest_phys`` (masters with a local
        #: or global destination; slaves receiving a result).
        self.writes_dest = False
        #: Slave that only receives/writes the forwarded result.
        self.forwards_result_only = False
        #: True until the inter-copy dependence is removed.
        self.intercopy_pending = False
        #: Older same-address store this load must wait for.
        self.store_dep: Optional["Uop"] = None
        #: Cycle at which this (ready) uop first failed to issue because a
        #: transfer buffer was full; -1 when not blocked.
        self.blocked_on_buffer_since = -1
        #: Batched-engine dispatch recipe fields (repro.uarch.engine): the
        #: static execution latency and a bitmask of opcode properties
        #: plus the issue-category id.  The reference model leaves the
        #: defaults (it re-derives both per issue).
        self.lat0 = 0
        self.fastflags = 0

    @property
    def seq(self) -> int:
        return self.entry.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Uop #{self.seq} {self.role.value}@c{self.cluster} "
            f"{self.opcode.mnemonic} {self.state.value}>"
        )


class RobEntry:
    """Per-dynamic-instruction state shared by its uops (program order)."""

    __slots__ = (
        "seq",
        "dyn",
        "plan",
        "uops",
        "outstanding",
        "rename_undo",
        "branch_tag",
        "mispredicted",
        "fetch_cycle",
        "dispatch_cycle",
        "retired",
        "squashed",
    )

    def __init__(self, seq: int, dyn: "DynamicInstruction", plan: "DistributionPlan") -> None:
        self.seq = seq
        self.dyn = dyn
        self.plan = plan
        self.uops: list[Uop] = []
        self.outstanding = 0
        #: Rename undo log: (cluster, rclass, arch_uid, new_phys, prev_phys).
        self.rename_undo: list[tuple[int, object, int, int, Optional[int]]] = []
        self.branch_tag = -1
        self.mispredicted = False
        self.fetch_cycle = -1
        self.dispatch_cycle = -1
        self.retired = False
        self.squashed = False

    @property
    def completed(self) -> bool:
        return self.outstanding == 0

    @property
    def is_dual(self) -> bool:
        return len(self.uops) >= 2
