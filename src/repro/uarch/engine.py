"""The batched struct-of-arrays simulation engine.

:class:`BatchedProcessor` is a drop-in replacement for
:class:`~repro.uarch.processor.Processor` selected by
``ProcessorConfig.engine = "batched"`` (use :func:`make_processor` rather
than naming either class).  It produces **bit-identical statistics** —
``stats_fingerprint`` equality is enforced by
``tests/uarch/test_engine_identity.py`` on the full Table 2 suite — while
running several times faster, which is what makes design-space sweeps far
beyond the paper's two machines practical.

Where the speed comes from (DESIGN.md §14):

1. **Per-trace columns.**  ``start`` lowers the trace into parallel arrays
   ("struct of arrays"): one column of I-cache line ids and one column of
   per-instruction flag bitmasks (control/conditional/taken/load/store/
   divide/reassign/homeless).  The columns are built once per trace with
   numpy bulk operations when numpy is importable and a plain list
   comprehension otherwise — the dependency stays optional, and the
   columns are ordinary Python lists either way because element access on
   a list of small ints is faster than on an ndarray (and numpy scalars
   must never leak into the stats, which are fingerprinted by exact type).
2. **Dispatch recipes.**  Everything the front end derives per dynamic
   instruction in the reference model — the distribution plan, the
   non-forwarded/forwarded source register lists, writes-dest flags, the
   issue category, the static latency — is computed once per static
   instruction and cached; dispatch replays the recipe against the rename
   tables instead of re-deriving it.
3. **A fused cycle loop.**  ``advance`` inlines the reference model's
   event/tick/retire/issue/dispatch/fetch stages into one loop with the
   hot attribute chains hoisted into locals, eliminating per-cycle and
   per-uop method-call and attribute-lookup overhead.

Why bit-identity holds: the engine *shares the reference model's state
representation* — the same clusters, rename files, transfer buffers,
caches, predictor, ROB entries, and uops — and performs the same state
transitions in the same order within every cycle.  Cold paths (replay
exceptions, dynamic register reassignment, fast-forward, diagnostics,
checkpointing) simply delegate to the inherited reference implementation.
The observability hooks (``recorder``, ``metrics_hook``, ``stall_acct``,
invariant self-checks) and fault injectors are honoured at the same
points as the reference model.
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence

try:  # numpy accelerates column building only; everything works without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

from repro.core.distribution import DistributionPlan, Scenario, plan_for_instruction
from repro.core.registers import RegisterAssignment
from repro.errors import ConfigError
from repro.isa.opcodes import InstrClass, Opcode
from repro.isa.registers import RegisterClass
from repro.uarch.config import ProcessorConfig
from repro.uarch.processor import Processor, WatchdogTimeout
from repro.uarch.uop import RobEntry, Role, Uop, UopState
from repro.workloads.trace import DynamicInstruction


__all__ = ["ENGINES", "BatchedProcessor", "make_processor"]


#: Recognized values of ``ProcessorConfig.engine``.
ENGINES = ("reference", "batched")

# Per-instruction flag bits (the trace flag column and ``Uop.fastflags``).
F_CTRL = 1
F_COND = 2
F_TAKEN = 4       # bool(dyn.taken)
F_TNF = 8         # dyn.taken is not False (ends a predicted-taken group)
F_LOAD = 16
F_STORE = 32
F_DIV = 64
F_REASSIGN = 128
F_HOMELESS = 256  # names no registers: steered by the homeless policy

_CATEGORY = {
    InstrClass.INT_MULTIPLY: "integer",
    InstrClass.INT_OTHER: "integer",
    InstrClass.FP_DIVIDE: "fp",
    InstrClass.FP_OTHER: "fp",
    InstrClass.LOAD: "memory",
    InstrClass.STORE: "memory",
    InstrClass.CONTROL: "control",
}

#: Issue-category names indexed by the category id stored in the flag
#: bitmask at :data:`F_CAT_SHIFT` (bits above the per-instruction flags).
_CAT_NAMES = ("integer", "fp", "memory", "control")
_CAT_INDEX = {name: i for i, name in enumerate(_CAT_NAMES)}
F_CAT_SHIFT = 9

#: Scenario enum member by its integer value, for flushing the batched
#: by-scenario dispatch counts back into ``stats.by_scenario``.
_SCEN_OF = {s.value: s for s in Scenario}
_NUM_SCENARIOS = len(_SCEN_OF)


def make_processor(config: ProcessorConfig, assignment: RegisterAssignment) -> Processor:
    """Build the processor model selected by ``config.engine``."""
    engine = config.engine
    if engine == "reference":
        return Processor(config, assignment)
    if engine == "batched":
        return BatchedProcessor(config, assignment)
    raise ConfigError(
        f"unknown engine {engine!r} (expected one of {', '.join(ENGINES)})",
        config=config.name,
    )


def _static_flags(opcode: Opcode, homeless: bool) -> int:
    iclass = opcode.iclass
    flags = 0
    if iclass is InstrClass.CONTROL:
        flags |= F_CTRL
        if opcode.is_conditional_branch:
            flags |= F_COND
    elif iclass is InstrClass.LOAD:
        flags |= F_LOAD
    elif iclass is InstrClass.STORE:
        flags |= F_STORE
    elif iclass is InstrClass.FP_DIVIDE:
        flags |= F_DIV
    if homeless:
        flags |= F_HOMELESS
    return flags


class _Recipe:
    """Everything dispatch derives from (static instruction, plan)."""

    __slots__ = (
        "plan",
        "scenario",
        "is_dual",
        "master",
        "slave",
        "m_srcs",       # master (rclass, reg uid, is_int) triples, non-forwarded
        "s_srcs",       # slave (rclass, reg uid, is_int) triples, forwarded
        "has_fwd",
        "result_fwd",
        "dest_rc",
        "dest_uid",
        "dest_is_int",
        "m_writes",
        "s_writes",
        "opcode",
        "iclass",
        "cat",
        "scen_i",
        "lat",
        "ff",
        "slaves",       # every helper cluster (plan.slaves)
        "multi",        # more than one helper (N>=3-cluster plans only)
        "s_srcs_by",    # per helper: forwarded (rclass, uid, is_int) triples
        "s_writes_by",  # per helper: writes its register-file copy
        "n_shippers",   # distinct helper clusters forwarding operands
    )

    def __init__(self, instr, plan: DistributionPlan, config: ProcessorConfig) -> None:
        opcode = instr.opcode
        dest = instr.effective_dest
        forwarded = set(plan.forwarded_src_indices)
        int_class = RegisterClass.INT
        self.plan = plan
        self.scenario = plan.scenario
        self.is_dual = plan.is_dual
        self.master = plan.master
        self.slave = plan.slave
        # The is_int booleans let dispatch pick a rename file with an
        # identity test instead of hashing the enum for a dict lookup.
        self.m_srcs = tuple(
            (src.rclass, src.uid, src.rclass is int_class)
            for i, src in enumerate(instr.srcs)
            if not src.is_zero and i not in forwarded
        )
        self.s_srcs = tuple(
            (instr.srcs[i].rclass, instr.srcs[i].uid, instr.srcs[i].rclass is int_class)
            for i in plan.forwarded_src_indices
        )
        self.has_fwd = bool(plan.forwarded_src_indices)
        self.result_fwd = plan.result_forwarded
        self.dest_rc = None if dest is None else dest.rclass
        self.dest_uid = -1 if dest is None else dest.uid
        self.dest_is_int = dest is not None and dest.rclass is int_class
        self.m_writes = dest is not None and (plan.global_dest or not plan.result_forwarded)
        self.s_writes = dest is not None and (plan.global_dest or plan.result_forwarded)
        self.slaves = plan.slaves
        self.multi = len(plan.slaves) > 1
        self.s_srcs_by = tuple(
            tuple(
                (
                    instr.srcs[i].rclass,
                    instr.srcs[i].uid,
                    instr.srcs[i].rclass is int_class,
                )
                for i, home in zip(plan.forwarded_src_indices, plan.forwarded_homes)
                if home == sc
            )
            for sc in plan.slaves
        )
        self.s_writes_by = tuple(
            dest is not None and (plan.global_dest or sc in plan.result_receivers)
            for sc in plan.slaves
        )
        self.n_shippers = len(set(plan.forwarded_homes))
        self.opcode = opcode
        self.iclass = opcode.iclass
        self.cat = _CATEGORY[opcode.iclass]
        self.scen_i = plan.scenario.value
        self.lat = config.latencies.latency_of(opcode)
        # Flag bits plus the issue-category id in the bits above them, so
        # the issue loop indexes its per-class limit list with a shift
        # instead of hashing the category name.
        self.ff = (_static_flags(opcode, False) & ~F_HOMELESS) | (
            _CAT_INDEX[self.cat] << F_CAT_SHIFT
        )


class BatchedProcessor(Processor):
    """Struct-of-arrays engine; bit-identical to :class:`Processor`.

    Shares every piece of machine state with the reference model and
    overrides only ``start`` (column building), ``advance`` (the fused
    loop), and the dispatch front end (recipes).  Cold paths — replay,
    reassignment, fast-forward, diagnostics — run the inherited reference
    code on the shared state.
    """

    def __init__(self, config: ProcessorConfig, assignment: RegisterAssignment) -> None:
        super().__init__(config, assignment)
        #: Trace columns (built by :meth:`start`): I-cache line id and
        #: flag bitmask per trace position.
        self._col_trace: Optional[Sequence[DynamicInstruction]] = None
        self._col_lines: list[int] = []
        self._col_flags: list[int] = []
        #: Dispatch recipes keyed ``(id(instr), id(plan))`` for register-
        #: naming instructions (both referents are kept alive by the trace
        #: and ``_plan_cache`` respectively, so the ids are stable) and
        #: ``(id(instr), preferred)`` for homeless ones.  Cleared on
        #: reassignment and dropped on pickling — object ids do not
        #: survive a checkpoint round-trip.
        self._recipes: dict = {}
        #: Number of live uops with ``blocked_on_buffer_since >= 0``.  The
        #: fused loop skips the (read-only when nothing is blocked) replay
        #: scan while this is zero.  A replay resets every surviving
        #: counter, so the replay override zeroes it; squashed uops never
        #: issue, so the issue-time decrement stays balanced.
        self._bbuf = 0

    # ------------------------------------------------------------- plumbing
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_recipes"] = {}
        return state

    def _handle_reassignment(self, dyn: DynamicInstruction, cycle: int) -> bool:
        done = super()._handle_reassignment(dyn, cycle)
        if done:
            # The parent cleared _plan_cache; recipes embed those plans
            # (and the old assignment's steering), so they go too.
            self._recipes.clear()
        return done

    def _replay(self, survivor: RobEntry, cycle: int) -> None:
        super()._replay(survivor, cycle)
        # The parent reset blocked_on_buffer_since on every surviving uop;
        # squashed uops (which may still carry a stamp) never issue.
        self._bbuf = 0

    def start(self, trace: Sequence[DynamicInstruction], max_cycles: int = 0) -> None:
        super().start(trace, max_cycles)
        if self._col_trace is not trace:
            self._build_columns(trace)

    def _build_columns(self, trace: Sequence[DynamicInstruction]) -> None:
        shift = self.icache.line_shift
        n = len(trace)
        if _np is not None and n:
            pcs = _np.fromiter((dyn.meta.pc for dyn in trace), dtype=_np.int64, count=n)
            lines = (pcs >> shift).tolist()
        else:
            lines = [dyn.meta.pc >> shift for dyn in trace]
        static: dict[int, int] = {}
        flags = []
        append = flags.append
        for dyn in trace:
            instr = dyn.instr
            key = id(instr)
            base = static.get(key)
            if base is None:
                base = _static_flags(instr.opcode, not instr.named_registers())
                static[key] = base
            taken = dyn.taken
            if taken:
                base |= F_TAKEN | F_TNF
            elif taken is not False:
                base |= F_TNF
            if dyn.reassign is not None:
                base |= F_REASSIGN
            append(base)
        self._col_trace = trace
        self._col_lines = lines
        self._col_flags = flags

    def _recipe_for(self, instr, flags: int) -> _Recipe:
        recipes = self._recipes
        if flags & F_HOMELESS:
            # Mirror Processor._plan_for: the homeless pointer advances on
            # every dispatch *attempt*, including ones that then stall.
            if self.config.alternate_homeless:
                preferred = self._homeless_next
                self._homeless_next = (preferred + 1) % self.config.num_clusters
            else:
                preferred = 0
                self._homeless_next = 0
            # Keyed by instruction identity (not opcode) so the lookup
            # hashes plain ints; a homeless recipe depends only on
            # (opcode, preferred), so extra per-instruction entries are
            # redundant but harmless and bounded by the static program.
            key = (id(instr), preferred)
            recipe = recipes.get(key)
            if recipe is None:
                plan = plan_for_instruction(instr, self.assignment, preferred=preferred)
                recipe = _Recipe(instr, plan, self.config)
                recipes[key] = recipe
            return recipe
        plan = self._plan_cache.get(instr.uid)
        if plan is None:
            plan = plan_for_instruction(instr, self.assignment)
            self._plan_cache[instr.uid] = plan
        key = (id(instr), id(plan))
        recipe = recipes.get(key)
        if recipe is None:
            recipe = _Recipe(instr, plan, self.config)
            recipes[key] = recipe
        return recipe

    # ------------------------------------------------------------ fused loop
    def advance(self, max_steps: int = 0) -> bool:  # noqa: C901 - deliberately fused
        trace = self._trace
        if self._col_trace is not trace:
            self._build_columns(trace)

        # --- hoisted invariants of this machine -------------------------
        config = self.config
        clusters = self.clusters
        nclusters = len(clusters)
        dual = nclusters > 1
        stats = self.stats
        icache = self.icache
        dcache = self.dcache
        dcache_stats = dcache.stats
        predictor = self.predictor
        trace_len = len(trace)
        lines = self._col_lines
        flags_col = self._col_flags
        fetch_width = config.fetch_width
        fetch_cap = fetch_width * 2
        dispatch_width = config.dispatch_width
        retire_width = config.retire_width
        frontend_depth = config.frontend_depth
        mispredict_redirect = config.mispredict_redirect
        window = config.progress_window
        limit = self._limit
        heappush = heapq.heappush
        heappop = heapq.heappop
        MASTER = Role.MASTER
        SLAVE = Role.SLAVE
        RC_INT = RegisterClass.INT
        new_uop = Uop.__new__
        new_entry = RobEntry.__new__
        plan_cache_get = self._plan_cache.get  # dict cleared in place
        recipes_get = self._recipes.get        # dict cleared in place
        WAITING = UopState.WAITING
        READY = UopState.READY
        ISSUED = UopState.ISSUED
        SUSPENDED = UopState.SUSPENDED
        DONE = UopState.DONE
        # Per-cluster issue state: the per-class limit template (indexed by
        # category id, copied each cycle) and a per-advance accumulator of
        # issued-by-class counts (flushed into ClusterStats by flush()).
        issue_templates = [
            (
                cl,
                cl.config.issue.total,
                [
                    cl.config.issue.integer,
                    cl.config.issue.floating_point,
                    cl.config.issue.memory,
                    cl.config.issue.control,
                ],
                [0, 0, 0, 0],
            )
            for cl in clusters
        ]

        # D-cache internals for the inlined load/store hit path (the
        # inline mirrors Cache.access exactly, batched counters aside).
        d_sets = dcache._sets
        d_nsets = dcache.num_sets
        d_shift = dcache.line_shift
        d_assoc = dcache.config.associativity
        d_memlat = dcache.memory_latency
        d_inflight = dcache._inflight

        # Stable containers (mutated in place everywhere, incl. cold paths).
        rob = self._rob
        rob_popleft = rob.popleft
        rob_append = rob.append
        events_map = self._events
        event_cycles = self._event_cycles
        pending_stores = self._pending_stores
        store_waiters = self._store_waiters
        recent = self._recent
        recent_append = recent.append

        def sched(when, event, _map=events_map, _heap=event_cycles, _push=heappush):
            bucket = _map.get(when)
            if bucket is None:
                _map[when] = [event]
                _push(_heap, when)
            else:
                bucket.append(event)

        # Observability handles and fault injectors attach before the run
        # (never mid-advance), so one hoist per advance() call suffices.
        recorder = self.recorder
        acct = self.stall_acct
        invariants = self._invariants
        metrics_hook = self.metrics_hook
        fault_hooks = self.fault_hooks  # list mutated in place by install
        obs_active = (
            recorder is not None
            or acct is not None
            or invariants is not None
            or metrics_hook is not None
            or bool(fault_hooks)
        )

        # Monotonic adders batched into locals and written back by flush()
        # at every loop exit, before every cold-path call that could read
        # or dump stats, and once per cycle whenever observability is
        # attached (so hooks always see exact counters).
        fstall = 0          # stats.fetch_stall_cycles
        dstall = 0          # stats.dispatch_stall_cycles
        disorder_accum = 0  # stats.issue_disorder_accum
        dacc = 0            # dcache.stats.accesses
        dmiss = 0           # dcache.stats.misses
        dmerge = 0          # dcache.stats.merged_misses
        nd = 0              # stats.dual_distributed
        nof = 0             # stats.operand_forwards
        nrf = 0             # stats.result_forwards
        scen_acc = [0] * _NUM_SCENARIOS  # stats.by_scenario, by value - 1
        max_issued = self._max_issued_seq
        max_dispatched = self._max_dispatched_seq

        def flush():
            nonlocal fstall, dstall, disorder_accum, dacc, dmiss, dmerge
            nonlocal nd, nof, nrf
            if fstall:
                stats.fetch_stall_cycles += fstall
                fstall = 0
            if dstall:
                stats.dispatch_stall_cycles += dstall
                dstall = 0
            if disorder_accum:
                stats.issue_disorder_accum += disorder_accum
                disorder_accum = 0
            if dacc:
                dcache_stats.accesses += dacc
                dacc = 0
            if dmiss:
                dcache_stats.misses += dmiss
                dmiss = 0
            if dmerge:
                dcache_stats.merged_misses += dmerge
                dmerge = 0
            if nd:
                stats.dual_distributed += nd
                nd = 0
            if nof:
                stats.operand_forwards += nof
                nof = 0
            if nrf:
                stats.result_forwards += nrf
                nrf = 0
            by_scenario = stats.by_scenario
            for t_i in range(_NUM_SCENARIOS):
                t_n = scen_acc[t_i]
                if t_n:
                    t_scen = _SCEN_OF[t_i + 1]
                    by_scenario[t_scen] = by_scenario.get(t_scen, 0) + t_n
                    scen_acc[t_i] = 0
            self._max_issued_seq = max_issued
            self._max_dispatched_seq = max_dispatched
            for t_cl, _total, _limits, t_acc in issue_templates:
                if t_acc[0] or t_acc[1] or t_acc[2] or t_acc[3]:
                    by_class = t_cl.stats.issued_by_class
                    for t_i in (0, 1, 2, 3):
                        t_n = t_acc[t_i]
                        if t_n:
                            t_name = _CAT_NAMES[t_i]
                            by_class[t_name] = by_class.get(t_name, 0) + t_n
                            t_acc[t_i] = 0

        cycle = self.cycle
        steps = 0
        while True:
            # -------------------------------------------------- bookkeeping
            fetch_buffer = self._fetch_buffer  # rebound by _replay
            fetch_index = self._fetch_index
            if fetch_index >= trace_len and not fetch_buffer and not rob:
                flush()
                return True
            if max_steps and steps >= max_steps:
                flush()
                return False

            # ------------------------------------------------- fault hooks
            if fault_hooks:
                flush()
                for fault in fault_hooks:
                    fault(self, cycle)
                fetch_buffer = self._fetch_buffer
                fetch_index = self._fetch_index
                max_issued = self._max_issued_seq
                max_dispatched = self._max_dispatched_seq
                d_inflight = dcache._inflight

            # ------------------------------------------------------ events
            # Inlined Processor._process_events / _complete_uop / _wake.
            processed = 0
            while event_cycles and event_cycles[0] <= cycle:
                event_cycle = heappop(event_cycles)
                for event in events_map.pop(event_cycle, ()):
                    processed += 1
                    kind = event[0]
                    if kind == "complete":
                        uop = event[1]
                        entry = uop.entry
                        if entry.retired or entry.squashed or uop.state is DONE:
                            continue
                        uop.state = DONE
                        uop.done_cycle = event_cycle
                        is_master = uop.role is MASTER
                        role_value = "master" if is_master else "slave"
                        recent_append(
                            (event_cycle, "complete", entry.seq, role_value, uop.cluster)
                        )
                        if recorder is not None:
                            recorder.record(
                                event_cycle, "complete", entry.seq, role_value, uop.cluster
                            )
                        if invariants is not None:
                            invariants.check_writeback(uop, event_cycle)
                        if uop.dest_phys is not None and uop.writes_dest:
                            rclass, phys = uop.dest_phys
                            rename = clusters[uop.cluster].rename
                            rfile = (
                                rename.file_int if rclass is RC_INT else rename.file_fp
                            )
                            rfile.ready[phys] = True
                            woken = rfile.waiters[phys]
                            rfile.waiters[phys] = []
                            for waiter in woken:
                                wentry = waiter.entry
                                if wentry.retired or wentry.squashed:
                                    continue
                                wstate = waiter.state
                                if wstate is not WAITING and wstate is not SUSPENDED:
                                    continue
                                waiter.wait_count -= 1
                                if waiter.wait_count <= 0:
                                    waiter.state = READY
                                    heappush(
                                        clusters[waiter.cluster].ready,
                                        (
                                            wentry.seq,
                                            1 if wstate is SUSPENDED else 0,
                                            waiter,
                                        ),
                                    )
                        if is_master:
                            ff = uop.fastflags
                            if ff & F_COND:
                                predictor.resolve(entry.branch_tag)
                                if (
                                    entry.mispredicted
                                    and self._mispredict_block_seq == entry.seq
                                ):
                                    sched(
                                        event_cycle + mispredict_redirect,
                                        ("fetch_resume", entry.seq),
                                    )
                            if ff & F_STORE:
                                dyn = entry.dyn
                                if (
                                    dyn.address is not None
                                    and pending_stores.get(dyn.address) is uop
                                ):
                                    del pending_stores[dyn.address]
                                for waiter in store_waiters.pop(entry.seq, ()):
                                    self._wake(waiter)
                        entry.outstanding -= 1
                    elif kind == "wake":
                        waiter = event[1]
                        wentry = waiter.entry
                        if wentry.retired or wentry.squashed:
                            continue
                        wstate = waiter.state
                        if wstate is not WAITING and wstate is not SUSPENDED:
                            continue
                        waiter.wait_count -= 1
                        if waiter.wait_count <= 0:
                            waiter.state = READY
                            heappush(
                                clusters[waiter.cluster].ready,
                                (wentry.seq, 1 if wstate is SUSPENDED else 0, waiter),
                            )
                    elif kind == "fetch_resume":
                        if self._mispredict_block_seq == event[1]:
                            self._mispredict_block_seq = None
                            if event_cycle > self._fetch_stall_until:
                                self._fetch_stall_until = event_cycle

            # ---------------------------------------------- buffer ticks
            if dual:
                for cl in clusters:
                    buf = cl.operand_buffer
                    pending = buf._pending_free
                    if pending:
                        entries = buf.entries
                        while pending and pending[0][0] <= cycle:
                            entries.pop(heappop(pending)[1], None)
                    buf = cl.result_buffer
                    pending = buf._pending_free
                    if pending:
                        entries = buf.entries
                        while pending and pending[0][0] <= cycle:
                            entries.pop(heappop(pending)[1], None)

            # ------------------------------------------------------ retire
            retired = 0
            if rob:
                while retired < retire_width:
                    if not rob:
                        break
                    entry = rob[0]
                    if entry.outstanding:
                        break
                    rob_popleft()
                    entry.retired = True
                    seq = entry.seq
                    recent_append((cycle, "retire", seq, "-", -1))
                    if recorder is not None:
                        recorder.record(cycle, "retire", seq, "-", -1)
                    if invariants is not None:
                        invariants.check_retire(seq, cycle)
                    for cluster_index, rclass, _arch_uid, _phys, prev in entry.rename_undo:
                        if prev is not None:
                            rename = clusters[cluster_index].rename
                            rfile = (
                                rename.file_int if rclass is RC_INT else rename.file_fp
                            )
                            rfile.ready[prev] = False
                            rfile.waiters[prev].clear()
                            rfile.free.append(prev)
                    retired += 1
                if retired:
                    stats.instructions += retired

            # ------------------------------------------------------- issue
            # Inlined _issue_all / _issue_cluster / _issue_blocked / _do_issue.
            issued_any = False
            for cl, total_limit, template, by_class_acc in issue_templates:
                ready = cl.ready
                if not ready and acct is None:
                    continue
                remaining_total = total_limit
                remaining = template.copy()
                skipped = []
                issued = 0
                class_limited = 0
                blocked_buffer = 0
                blocked_divider = 0
                while ready and remaining_total > 0:
                    item = heappop(ready)
                    seq, phase, uop = item
                    entry = uop.entry
                    if entry.retired or entry.squashed or uop.state is not READY:
                        continue
                    ff = uop.fastflags
                    ci = ff >> F_CAT_SHIFT
                    if remaining[ci] <= 0:
                        class_limited += 1
                        skipped.append(item)
                        continue
                    role = uop.role
                    # ---- _issue_blocked
                    blocked = None
                    if ff & F_DIV and role is MASTER:
                        free = False
                        for t in cl.divider_free_at:
                            if t <= cycle:
                                free = True
                                break
                        if not free:
                            blocked = "divider"
                    if dual and blocked is None:
                        # Single-cluster uops never touch transfer buffers.
                        is_result_phase_slave = role is SLAVE and (
                            uop.forwards_result_only or phase == 1
                        )
                        if (
                            uop.needs_operand_entry
                            and phase == 0
                            and not is_result_phase_slave
                        ):
                            buf = clusters[uop.partner.cluster].operand_buffer
                            if (
                                len(buf.entries) >= buf.capacity
                                and seq not in buf.entries
                            ):
                                blocked = "buffer"
                        if (
                            blocked is None
                            and role is MASTER
                            and uop.needs_result_entry
                        ):
                            for rcv in uop.entry.plan.result_receivers:
                                buf = clusters[rcv].result_buffer
                                if len(buf.entries) >= buf.capacity:
                                    blocked = "buffer"
                                    break
                    if blocked is not None:
                        if blocked == "buffer":
                            if uop.blocked_on_buffer_since < 0:
                                uop.blocked_on_buffer_since = cycle
                                self._bbuf += 1
                            blocked_buffer += 1
                            if uop.needs_operand_entry and phase == 0:
                                buf = clusters[uop.partner.cluster].operand_buffer
                            else:
                                # Master blocked on a result entry: charge
                                # the first receiver buffer that is full.
                                buf = clusters[uop.partner.cluster].result_buffer
                                for rcv in uop.entry.plan.result_receivers:
                                    cand = clusters[rcv].result_buffer
                                    if len(cand.entries) >= cand.capacity:
                                        buf = cand
                                        break
                            buf.stats.full_stall_cycles += 1
                        else:
                            blocked_divider += 1
                        skipped.append(item)
                        continue
                    # ---- _do_issue
                    if invariants is not None:
                        invariants.check_issue(uop, cl, cycle, phase)
                    uop.state = ISSUED
                    uop.issue_cycle = cycle
                    if uop.blocked_on_buffer_since >= 0:
                        uop.blocked_on_buffer_since = -1
                        self._bbuf -= 1
                    event_name = "issue" if phase == 0 else "reissue"
                    role_value = "master" if role is MASTER else "slave"
                    recent_append((cycle, event_name, seq, role_value, uop.cluster))
                    if recorder is not None:
                        recorder.record(cycle, event_name, seq, role_value, uop.cluster)
                    by_class_acc[ci] += 1
                    if seq < max_issued:
                        disorder_accum += max_issued - seq
                    else:
                        max_issued = seq
                    if phase == 0:
                        cl.queue_free += 1
                    if role is SLAVE and uop.needs_operand_entry and phase == 0:
                        # Slave ships the operand to the master's cluster; a
                        # sibling slave of the same instruction shares the
                        # entry (mirrors TransferBuffer.allocate).
                        partner = uop.partner
                        buf = clusters[partner.cluster].operand_buffer
                        bstats = buf.stats
                        if seq in buf.entries:
                            bstats.allocations += 1
                        else:
                            if len(buf.entries) >= buf.capacity:
                                raise RuntimeError(f"{buf.name} overflow")
                            buf.entries[seq] = cycle
                            bstats.allocations += 1
                            occupancy = len(buf.entries)
                            if occupancy > bstats.peak_occupancy:
                                bstats.peak_occupancy = occupancy
                        when = cycle + 1
                        bucket = events_map.get(when)
                        if bucket is None:
                            events_map[when] = bucket = [("wake", partner)]
                            heappush(event_cycles, when)
                        else:
                            bucket.append(("wake", partner))
                        if uop.writes_dest:
                            uop.state = SUSPENDED
                            uop.wait_count = 1
                        else:
                            bucket.append(("complete", uop))
                    elif role is SLAVE and (uop.forwards_result_only or phase == 1):
                        # Slave reads the forwarded result.
                        when = cycle + 1
                        heappush(cl.result_buffer._pending_free, (when, seq))
                        bucket = events_map.get(when)
                        if bucket is None:
                            events_map[when] = [("complete", uop)]
                            heappush(event_cycles, when)
                        else:
                            bucket.append(("complete", uop))
                    else:
                        # Master (or single-distributed) execution.
                        if ff & F_LOAD:
                            address = entry.dyn.address
                            if address is None:
                                latency = uop.lat0
                            elif uop.store_dep is not None:
                                # Store-to-load forwarding: counted as an
                                # access, no cache state touched.
                                dacc += 1
                                latency = uop.lat0
                            else:
                                # Inlined Cache.access (hit and miss).
                                dacc += 1
                                if len(d_inflight) > 4096:
                                    dcache.expire_inflight(cycle)
                                    d_inflight = dcache._inflight
                                line = address >> d_shift
                                tag = line // d_nsets
                                ways = d_sets[line % d_nsets]
                                if tag in ways:
                                    ways.remove(tag)
                                    ways.append(tag)
                                    latency = uop.lat0
                                else:
                                    dmiss += 1
                                    ready_at = d_inflight.get(line)
                                    if ready_at is not None and ready_at > cycle:
                                        dmerge += 1
                                    else:
                                        ready_at = cycle + d_memlat
                                        d_inflight[line] = ready_at
                                    ways.append(tag)
                                    if len(ways) > d_assoc:
                                        ways.pop(0)
                                    latency = (ready_at - cycle) + uop.lat0
                        elif ff & F_STORE:
                            address = entry.dyn.address
                            if address is not None:
                                # Inlined Cache.access(write=True); the
                                # ready cycle is irrelevant for stores.
                                dacc += 1
                                if len(d_inflight) > 4096:
                                    dcache.expire_inflight(cycle)
                                    d_inflight = dcache._inflight
                                line = address >> d_shift
                                tag = line // d_nsets
                                ways = d_sets[line % d_nsets]
                                if tag in ways:
                                    ways.remove(tag)
                                    ways.append(tag)
                                else:
                                    dmiss += 1
                                    ready_at = d_inflight.get(line)
                                    if ready_at is not None and ready_at > cycle:
                                        dmerge += 1
                                    else:
                                        d_inflight[line] = cycle + d_memlat
                                    ways.append(tag)
                                    if len(ways) > d_assoc:
                                        ways.pop(0)
                            latency = uop.lat0
                        else:
                            latency = uop.lat0
                        done = cycle + latency
                        if ff & F_DIV:
                            divider_free_at = cl.divider_free_at
                            for i, t in enumerate(divider_free_at):
                                if t <= cycle:
                                    divider_free_at[i] = done
                                    break
                        partner = uop.partner
                        if role is MASTER and partner is not None:
                            helpers = uop.entry.uops
                            if partner.needs_operand_entry or (
                                len(helpers) > 2
                                and uop.entry.plan.forwarded_src_indices
                            ):
                                heappush(
                                    cl.operand_buffer._pending_free, (cycle + 1, seq)
                                )
                            if uop.needs_result_entry:
                                wake_at = done - 1
                                if wake_at < cycle + 1:
                                    wake_at = cycle + 1
                                for receiver in helpers[1:]:
                                    if not receiver.writes_dest:
                                        continue
                                    buf = clusters[receiver.cluster].result_buffer
                                    if len(buf.entries) >= buf.capacity:
                                        raise RuntimeError(f"{buf.name} overflow")
                                    buf.entries[seq] = cycle
                                    bstats = buf.stats
                                    bstats.allocations += 1
                                    occupancy = len(buf.entries)
                                    if occupancy > bstats.peak_occupancy:
                                        bstats.peak_occupancy = occupancy
                                    bucket = events_map.get(wake_at)
                                    if bucket is None:
                                        events_map[wake_at] = [("wake", receiver)]
                                        heappush(event_cycles, wake_at)
                                    else:
                                        bucket.append(("wake", receiver))
                        bucket = events_map.get(done)
                        if bucket is None:
                            events_map[done] = [("complete", uop)]
                            heappush(event_cycles, done)
                        else:
                            bucket.append(("complete", uop))
                    remaining[ci] -= 1
                    remaining_total -= 1
                    issued += 1
                for item in skipped:
                    heappush(ready, item)
                if acct is not None:
                    acct.note_issue(
                        cl.index,
                        issued,
                        blocked_buffer,
                        blocked_divider,
                        class_limited,
                        occupied=cl.queue_free < cl.config.dispatch_queue_entries,
                        draining=fetch_index >= trace_len and not fetch_buffer,
                    )
                if issued:
                    issued_any = True
                    # Per-uop in the reference; the per-cycle sums are
                    # equal and no hook can observe the counters mid-issue.
                    cl.stats.issued += issued
                    stats.uops_executed += issued
                    stats.issue_disorder_samples += issued

            # ---------------------------------------------------- dispatch
            # Inlined _dispatch / _resources_available / _make_entry.
            budget = dispatch_width
            dispatched = False
            if acct is not None:
                acct.begin_dispatch()
            while budget > 0 and fetch_buffer:
                dyn, fetch_cycle, mispredicted, fl = fetch_buffer[0]
                if cycle < fetch_cycle + frontend_depth:
                    break
                seq = dyn.seq
                if fl & F_REASSIGN and seq not in self._reassigned_seqs:
                    flush()  # reassignment drains/diagnoses on exact stats
                    if not self._handle_reassignment(dyn, cycle):
                        break
                instr = dyn.instr
                recipe = None
                if not fl & F_HOMELESS:
                    plan = plan_cache_get(instr.uid)
                    if plan is not None:
                        recipe = recipes_get((id(instr), id(plan)))
                if recipe is None:
                    recipe = self._recipe_for(instr, fl)
                # ---- _resources_available
                master_cluster = clusters[recipe.master]
                if master_cluster.queue_free < 1:
                    master_cluster.stats.queue_full_stalls += 1
                    if acct is not None:
                        acct.note_dispatch_block("queue_full")
                    dstall += 1
                    break
                m_rename = master_cluster.rename
                dest_is_int = recipe.dest_is_int
                if recipe.m_writes and not (
                    m_rename.file_int if dest_is_int else m_rename.file_fp
                ).free:
                    master_cluster.stats.regfile_full_stalls += 1
                    if acct is not None:
                        acct.note_dispatch_block("regfile_full")
                    dstall += 1
                    break
                is_dual_entry = recipe.is_dual
                multi = recipe.multi
                if is_dual_entry and not multi:
                    slave_cluster = clusters[recipe.slave]
                    if slave_cluster.queue_free < 1:
                        slave_cluster.stats.queue_full_stalls += 1
                        if acct is not None:
                            acct.note_dispatch_block("queue_full")
                        dstall += 1
                        break
                    s_rename = slave_cluster.rename
                    if recipe.s_writes and not (
                        s_rename.file_int if dest_is_int else s_rename.file_fp
                    ).free:
                        slave_cluster.stats.regfile_full_stalls += 1
                        if acct is not None:
                            acct.note_dispatch_block("regfile_full")
                        dstall += 1
                        break
                elif multi:
                    # N>=3-cluster plan: every helper cluster needs a queue
                    # slot, and every result receiver a free register.
                    blocked_dispatch = False
                    for si, sc_index in enumerate(recipe.slaves):
                        sc = clusters[sc_index]
                        if sc.queue_free < 1:
                            sc.stats.queue_full_stalls += 1
                            if acct is not None:
                                acct.note_dispatch_block("queue_full")
                            dstall += 1
                            blocked_dispatch = True
                            break
                        r = sc.rename
                        if recipe.s_writes_by[si] and not (
                            r.file_int if dest_is_int else r.file_fp
                        ).free:
                            sc.stats.regfile_full_stalls += 1
                            if acct is not None:
                                acct.note_dispatch_block("regfile_full")
                            dstall += 1
                            blocked_dispatch = True
                            break
                    if blocked_dispatch:
                        break
                fetch_buffer.popleft()
                # ---- _make_entry (RobEntry slots written inline; mirrors
                # RobEntry.__init__ plus the fetch/dispatch stamps)
                entry = new_entry(RobEntry)
                entry.seq = seq
                entry.dyn = dyn
                entry.plan = recipe.plan
                entry.uops = uops = []
                entry.outstanding = 0
                entry.rename_undo = rename_undo = []
                entry.branch_tag = -1
                entry.mispredicted = False
                entry.fetch_cycle = fetch_cycle
                entry.dispatch_cycle = cycle
                entry.retired = False
                entry.squashed = False
                if seq > max_dispatched:
                    max_dispatched = seq
                    scen_acc[recipe.scen_i - 1] += 1
                    if is_dual_entry:
                        nd += 1
                        if recipe.has_fwd:
                            nof += 1
                        if recipe.result_fwd:
                            nrf += 1
                if fl & F_COND:
                    entry.branch_tag = seq
                    entry.mispredicted = mispredicted
                has_fwd = recipe.has_fwd
                # Uop slots written inline; mirrors Uop.__init__ with the
                # recipe's precomputed fields folded in.
                master = new_uop(Uop)
                master.entry = entry
                master.role = MASTER
                master.cluster = recipe.master
                master.opcode = recipe.opcode
                master.iclass = recipe.iclass
                master.dest_phys = None
                master.state = WAITING
                master.issue_cycle = -1
                master.done_cycle = -1
                master.partner = None
                master.needs_operand_entry = False
                master.needs_result_entry = recipe.result_fwd
                master.writes_dest = recipe.m_writes
                master.forwards_result_only = False
                master.intercopy_pending = has_fwd
                master.store_dep = None
                master.blocked_on_buffer_since = -1
                master.lat0 = recipe.lat
                master.fastflags = recipe.ff
                master.src_phys = src_phys = []
                # One wake per shipping helper (exactly ``has_fwd`` on a
                # two-cluster machine, where all forwards share one slave).
                wait = recipe.n_shippers
                for rclass, reg_uid, is_int in recipe.m_srcs:
                    rfile = m_rename.file_int if is_int else m_rename.file_fp
                    phys = rfile.mapping[reg_uid]
                    src_phys.append((rclass, phys))
                    if not rfile.ready[phys]:
                        wait += 1
                        rfile.waiters[phys].append(master)
                master.wait_count = wait
                if recipe.m_writes:
                    rfile = m_rename.file_int if dest_is_int else m_rename.file_fp
                    phys = rfile.free.pop()
                    prev = rfile.mapping.get(recipe.dest_uid)
                    rfile.mapping[recipe.dest_uid] = phys
                    rfile.ready[phys] = False
                    rfile.waiters[phys].clear()
                    master.dest_phys = (recipe.dest_rc, phys)
                    rename_undo.append(
                        (recipe.master, recipe.dest_rc, recipe.dest_uid, phys, prev)
                    )
                uops.append(master)
                master_cluster.queue_free -= 1
                mstats = master_cluster.stats
                occupancy = (
                    master_cluster.config.dispatch_queue_entries
                    - master_cluster.queue_free
                )
                if occupancy > mstats.peak_queue_occupancy:
                    mstats.peak_queue_occupancy = occupancy
                if is_dual_entry and not multi:
                    slave = new_uop(Uop)
                    slave.entry = entry
                    slave.role = SLAVE
                    slave.cluster = recipe.slave
                    slave.opcode = recipe.opcode
                    slave.iclass = recipe.iclass
                    slave.dest_phys = None
                    slave.state = WAITING
                    slave.issue_cycle = -1
                    slave.done_cycle = -1
                    slave.needs_operand_entry = has_fwd
                    slave.needs_result_entry = False
                    slave.writes_dest = recipe.s_writes
                    slave.forwards_result_only = not has_fwd
                    slave.intercopy_pending = not has_fwd
                    slave.store_dep = None
                    slave.blocked_on_buffer_since = -1
                    slave.lat0 = recipe.lat
                    slave.fastflags = recipe.ff
                    slave.src_phys = src_phys = []
                    wait = 0 if has_fwd else 1
                    for rclass, reg_uid, is_int in recipe.s_srcs:
                        rfile = s_rename.file_int if is_int else s_rename.file_fp
                        phys = rfile.mapping[reg_uid]
                        src_phys.append((rclass, phys))
                        if not rfile.ready[phys]:
                            wait += 1
                            rfile.waiters[phys].append(slave)
                    slave.wait_count = wait
                    if recipe.s_writes:
                        rfile = s_rename.file_int if dest_is_int else s_rename.file_fp
                        phys = rfile.free.pop()
                        prev = rfile.mapping.get(recipe.dest_uid)
                        rfile.mapping[recipe.dest_uid] = phys
                        rfile.ready[phys] = False
                        rfile.waiters[phys].clear()
                        slave.dest_phys = (recipe.dest_rc, phys)
                        rename_undo.append(
                            (recipe.slave, recipe.dest_rc, recipe.dest_uid, phys, prev)
                        )
                    slave.partner = master
                    master.partner = slave
                    uops.append(slave)
                    slave_cluster.queue_free -= 1
                    sstats = slave_cluster.stats
                    occupancy = (
                        slave_cluster.config.dispatch_queue_entries
                        - slave_cluster.queue_free
                    )
                    if occupancy > sstats.peak_queue_occupancy:
                        sstats.peak_queue_occupancy = occupancy
                elif multi:
                    # One slave copy per helper cluster (mirrors the
                    # reference _make_entry loop; cold path — only N>=3
                    # plans spanning three or more clusters reach it).
                    for si, sc_index in enumerate(recipe.slaves):
                        sc = clusters[sc_index]
                        s_rename = sc.rename
                        own_srcs = recipe.s_srcs_by[si]
                        slave = new_uop(Uop)
                        slave.entry = entry
                        slave.role = SLAVE
                        slave.cluster = sc_index
                        slave.opcode = recipe.opcode
                        slave.iclass = recipe.iclass
                        slave.dest_phys = None
                        slave.state = WAITING
                        slave.issue_cycle = -1
                        slave.done_cycle = -1
                        slave.needs_operand_entry = bool(own_srcs)
                        slave.needs_result_entry = False
                        slave.writes_dest = recipe.s_writes_by[si]
                        slave.forwards_result_only = not own_srcs
                        slave.intercopy_pending = not own_srcs
                        slave.store_dep = None
                        slave.blocked_on_buffer_since = -1
                        slave.lat0 = recipe.lat
                        slave.fastflags = recipe.ff
                        slave.src_phys = src_phys = []
                        wait = 0 if own_srcs else 1
                        for rclass, reg_uid, is_int in own_srcs:
                            rfile = s_rename.file_int if is_int else s_rename.file_fp
                            phys = rfile.mapping[reg_uid]
                            src_phys.append((rclass, phys))
                            if not rfile.ready[phys]:
                                wait += 1
                                rfile.waiters[phys].append(slave)
                        slave.wait_count = wait
                        if recipe.s_writes_by[si]:
                            rfile = s_rename.file_int if dest_is_int else s_rename.file_fp
                            phys = rfile.free.pop()
                            prev = rfile.mapping.get(recipe.dest_uid)
                            rfile.mapping[recipe.dest_uid] = phys
                            rfile.ready[phys] = False
                            rfile.waiters[phys].clear()
                            slave.dest_phys = (recipe.dest_rc, phys)
                            rename_undo.append(
                                (sc_index, recipe.dest_rc, recipe.dest_uid, phys, prev)
                            )
                        slave.partner = master
                        uops.append(slave)
                        sc.queue_free -= 1
                        sstats = sc.stats
                        occupancy = (
                            sc.config.dispatch_queue_entries - sc.queue_free
                        )
                        if occupancy > sstats.peak_queue_occupancy:
                            sstats.peak_queue_occupancy = occupancy
                    master.partner = uops[1]
                if fl & F_LOAD:
                    address = dyn.address
                    if address is not None:
                        dep = pending_stores.get(address)
                        if (
                            dep is not None
                            and not dep.entry.retired
                            and dep.state is not DONE
                        ):
                            master.store_dep = dep
                            master.wait_count += 1
                            store_waiters.setdefault(dep.entry.seq, []).append(master)
                elif fl & F_STORE:
                    address = dyn.address
                    if address is not None:
                        pending_stores[address] = master
                if multi:
                    entry.outstanding = len(uops)
                    for u in uops:
                        if u.wait_count == 0:
                            u.state = READY
                            heappush(clusters[u.cluster].ready, (seq, 0, u))
                    for u in uops:
                        role_value = "master" if u.role is MASTER else "slave"
                        recent_append((cycle, "dispatch", seq, role_value, u.cluster))
                        if recorder is not None:
                            recorder.record(cycle, "dispatch", seq, role_value, u.cluster)
                    budget -= len(uops)
                elif is_dual_entry:
                    entry.outstanding = 2
                    if master.wait_count == 0:
                        master.state = READY
                        heappush(master_cluster.ready, (seq, 0, master))
                    if slave.wait_count == 0:
                        slave.state = READY
                        heappush(slave_cluster.ready, (seq, 0, slave))
                    recent_append((cycle, "dispatch", seq, "master", master.cluster))
                    recent_append((cycle, "dispatch", seq, "slave", slave.cluster))
                    if recorder is not None:
                        recorder.record(cycle, "dispatch", seq, "master", master.cluster)
                        recorder.record(cycle, "dispatch", seq, "slave", slave.cluster)
                    budget -= 2
                else:
                    entry.outstanding = 1
                    if master.wait_count == 0:
                        master.state = READY
                        heappush(master_cluster.ready, (seq, 0, master))
                    recent_append((cycle, "dispatch", seq, "master", master.cluster))
                    if recorder is not None:
                        recorder.record(cycle, "dispatch", seq, "master", master.cluster)
                    budget -= 1
                rob_append(entry)
                dispatched = True

            # ------------------------------------------------------- fetch
            # Inlined _fetch.
            fetched = 0
            if self._mispredict_block_seq is not None or cycle < self._fetch_stall_until:
                fstall += 1
            elif fetch_index < trace_len:
                space = fetch_cap - len(fetch_buffer)
                last_line = self._last_fetch_line
                while fetched < fetch_width and space > 0 and fetch_index < trace_len:
                    fl = flags_col[fetch_index]
                    dyn = trace[fetch_index]
                    line = lines[fetch_index]
                    if line != last_line:
                        ready_at = icache.access(dyn.meta.pc, cycle)
                        last_line = line
                        if ready_at > cycle:
                            self._fetch_stall_until = ready_at
                            break
                    predicted_taken = False
                    if fl & F_CTRL:
                        if fl & F_COND:
                            prediction = predictor.predict(
                                dyn.meta.pc, (fl & F_TAKEN) != 0, dyn.seq
                            )
                            predicted_taken = prediction
                            if prediction != ((fl & F_TAKEN) != 0):
                                fetch_buffer.append((dyn, cycle, True, fl))
                                fetch_index += 1
                                self._mispredict_block_seq = dyn.seq
                                last_line = -1
                                fetched = -1  # "return True" in the reference
                                break
                        else:
                            predicted_taken = True
                    fetch_buffer.append((dyn, cycle, False, fl))
                    fetch_index += 1
                    fetched += 1
                    space -= 1
                    if predicted_taken and fl & F_TNF:
                        last_line = -1
                        break
                self._last_fetch_line = last_line
                self._fetch_index = fetch_index
            fetched_any = fetched != 0

            # ------------------------------------------------------ replay
            # _check_replay can only find a victim when a transfer buffer
            # exists (dual clusters), something is in flight, and at least
            # one live uop is stamped buffer-blocked (_bbuf); the reference
            # call is a read-only no-op otherwise.
            if dual and rob and self._bbuf:
                replays = stats.replay_exceptions
                self._check_replay(cycle)
                if stats.replay_exceptions != replays:
                    fetch_buffer = self._fetch_buffer
                    fetch_index = self._fetch_index

            # ------------------------------------- progress + fast-forward
            if processed or retired or issued_any or dispatched or fetched_any:
                self._last_progress_cycle = cycle
            if not issued_any and not dispatched and not fetched_any and retired == 0:
                flush()  # fast-forward may raise with a diagnostic dump
                self.cycle = cycle
                self._maybe_fast_forward(cycle)
                cycle = self.cycle
            if obs_active:
                flush()
                if invariants is not None:
                    invariants.check_cycle(cycle)
                if metrics_hook is not None:
                    metrics_hook(self, cycle)
            cycle += 1
            self.cycle = cycle
            steps += 1
            if cycle > limit:
                flush()
                raise WatchdogTimeout(
                    f"exceeded cycle budget {limit}",
                    cycle=cycle,
                    seq=rob[0].seq if rob else self._fetch_index,
                    config=config.name,
                    diagnostics=self.diagnostic_dump(),
                )
            if window and cycle - self._last_progress_cycle > window:
                flush()
                raise WatchdogTimeout(
                    f"no forward progress for {window} cycles "
                    "(no fetch, dispatch, issue, retire, or event activity)",
                    cycle=cycle,
                    seq=rob[0].seq if rob else self._fetch_index,
                    config=config.name,
                    diagnostics=self.diagnostic_dump(),
                )
