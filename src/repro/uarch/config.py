"""Machine configurations (Table 1 and Section 4.1).

The paper's Table 1 gives per-class issue limits and functional-unit
latencies for the 8-way single-cluster processor and the 2x4-way
dual-cluster processor.  The PDF extraction of the table is partially
garbled; DESIGN.md Section 4 records the reconstruction used here:

================  ======================  =========================
quantity          single cluster (8-way)  dual cluster (per cluster)
================  ======================  =========================
issue, total      8                       4
issue, integer    8                       4
issue, FP         4                       2
issue, load/store 4                       2
issue, control    4                       2
================  ======================  =========================

Latencies: integer multiply 6; integer other 1; FP divide 8 (32-bit,
``divs``) / 16 (64-bit, ``divt``), *not pipelined*; FP other 3; loads 1
plus a single load-delay slot (load-to-use = 2 on a hit); control flow 1.
All other units are fully pipelined.

Shared front end (Section 4.1): fetch up to 12 instructions/cycle; 64 KB
two-way set-associative I- and D-caches; inverted MSHR (no limit on
in-flight misses); 16-cycle memory fetch latency with unlimited bandwidth;
McFarling combining branch predictor updated when branches execute; 8-wide
in-order retirement; 8 operand- and 8 result-transfer-buffer entries per
cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.isa.opcodes import InstrClass, Opcode
from repro.core.registers import RegisterAssignment


@dataclass(frozen=True)
class IssueRules:
    """Per-cluster, per-cycle issue limits (one row of Table 1)."""

    total: int
    integer: int
    floating_point: int
    memory: int
    control: int

    def limit_for(self, iclass: InstrClass) -> int:
        if iclass.is_integer:
            return self.integer
        if iclass.is_fp:
            return self.floating_point
        if iclass.is_memory:
            return self.memory
        return self.control


@dataclass(frozen=True)
class LatencyModel:
    """Functional-unit latencies (row 3 of Table 1)."""

    int_multiply: int = 6
    int_other: int = 1
    fp_divide_32: int = 8
    fp_divide_64: int = 16
    fp_other: int = 3
    load: int = 1
    load_delay_slots: int = 1
    store: int = 1
    control: int = 1

    def latency_of(self, opcode: Opcode) -> int:
        iclass = opcode.iclass
        if iclass is InstrClass.INT_MULTIPLY:
            return self.int_multiply
        if iclass is InstrClass.INT_OTHER:
            return self.int_other
        if iclass is InstrClass.FP_DIVIDE:
            return self.fp_divide_64 if opcode is Opcode.DIVT else self.fp_divide_32
        if iclass is InstrClass.FP_OTHER:
            return self.fp_other
        if iclass is InstrClass.LOAD:
            # One load-delay slot: the value is usable latency+delay cycles
            # after issue (Table 1 footnote).
            return self.load + self.load_delay_slots
        if iclass is InstrClass.STORE:
            return self.store
        return self.control


@dataclass(frozen=True)
class CacheConfig:
    """One cache (Section 4.1: 64 KB, two-way set associative)."""

    size_bytes: int = 64 * 1024
    associativity: int = 2
    line_bytes: int = 32

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class PredictorConfig:
    """McFarling combining predictor (bimodal + global + chooser)."""

    bimodal_entries: int = 4096
    global_entries: int = 4096
    chooser_entries: int = 4096
    history_bits: int = 12


@dataclass(frozen=True)
class ClusterConfig:
    """Resources of one cluster."""

    dispatch_queue_entries: int = 64
    int_physical_registers: int = 64
    fp_physical_registers: int = 64
    issue: IssueRules = field(
        default_factory=lambda: IssueRules(
            total=4, integer=4, floating_point=2, memory=2, control=2
        )
    )
    operand_buffer_entries: int = 8
    result_buffer_entries: int = 8
    fp_dividers: int = 1


@dataclass(frozen=True)
class ProcessorConfig:
    """A whole machine: clusters plus the shared front end and memory."""

    name: str
    clusters: tuple[ClusterConfig, ...]
    fetch_width: int = 12
    dispatch_width: int = 12
    retire_width: int = 8
    icache: CacheConfig = field(default_factory=CacheConfig)
    dcache: CacheConfig = field(default_factory=CacheConfig)
    memory_latency: int = 16
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    latencies: LatencyModel = field(default_factory=LatencyModel)
    #: Extra cycles between a mispredicted branch's execution and useful
    #: fetch resuming (redirect).
    mispredict_redirect: int = 1
    #: Cycles the front end takes from fetch to insertion into a dispatch
    #: queue (predict at insertion; Section 4.2 footnote 2).
    frontend_depth: int = 1
    #: Consecutive stalled cycles of the oldest instruction on a full
    #: transfer buffer before an instruction-replay exception fires.
    replay_threshold: int = 8
    #: Distribution policy for instructions naming no registers.
    alternate_homeless: bool = True
    #: Opt-in per-cycle invariant checker (repro.robustness.invariants).
    #: Observational only: self-check-on and self-check-off runs produce
    #: bit-identical cycle counts.
    self_check: bool = False
    #: Watchdog cycle budget; 0 derives a generous default from the trace
    #: length (100 cycles/instruction + 100k slack).
    cycle_budget: int = 0
    #: Forward-progress watchdog: simulated cycles without any fetch,
    #: dispatch, issue, retire, or event activity before the run is
    #: declared wedged.  0 disables.  The default is far above every
    #: legitimate stall (memory latency 16, FP divide 16, replay
    #: threshold 8).
    progress_window: int = 10_000
    #: Entries in the diagnostic ring buffer of recent pipeline events
    #: dumped when the model fails.
    diag_ring_entries: int = 64
    #: Simulation kernel: ``"reference"`` is the per-uop event-driven model
    #: in :mod:`repro.uarch.processor`; ``"batched"`` is the struct-of-
    #: arrays kernel in :mod:`repro.uarch.engine` (bit-identical statistics,
    #: several times faster).  Honoured by :func:`repro.uarch.engine.
    #: make_processor` and everything built on it (``simulate``, the
    #: experiment harness, the sweep CLI, ``repro bench``).
    engine: str = "reference"

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    @property
    def total_issue_width(self) -> int:
        return sum(c.issue.total for c in self.clusters)


SINGLE_ISSUE_RULES = IssueRules(total=8, integer=8, floating_point=4, memory=4, control=4)
DUAL_ISSUE_RULES = IssueRules(total=4, integer=4, floating_point=2, memory=2, control=2)


def single_cluster_config(name: str = "single-8way") -> ProcessorConfig:
    """The paper's 8-way single-cluster baseline: one cluster holding all
    the resources of the dual-cluster machine (128-entry queue, 128+128
    physical registers, 8-way issue)."""
    cluster = ClusterConfig(
        dispatch_queue_entries=128,
        int_physical_registers=128,
        fp_physical_registers=128,
        issue=SINGLE_ISSUE_RULES,
        operand_buffer_entries=0,
        result_buffer_entries=0,
        fp_dividers=2,
    )
    return ProcessorConfig(name=name, clusters=(cluster,))


def dual_cluster_config(name: str = "dual-4way") -> ProcessorConfig:
    """The paper's 2x4-way dual-cluster machine."""
    cluster = ClusterConfig(
        dispatch_queue_entries=64,
        int_physical_registers=64,
        fp_physical_registers=64,
        issue=DUAL_ISSUE_RULES,
        operand_buffer_entries=8,
        result_buffer_entries=8,
        fp_dividers=1,
    )
    return ProcessorConfig(name=name, clusters=(cluster, cluster))


def single_cluster_4way_config(name: str = "single-4way") -> ProcessorConfig:
    """4-way single cluster (the paper also evaluated 4-way machines)."""
    cluster = ClusterConfig(
        dispatch_queue_entries=64,
        int_physical_registers=64,
        fp_physical_registers=64,
        issue=IssueRules(total=4, integer=4, floating_point=2, memory=2, control=2),
        operand_buffer_entries=0,
        result_buffer_entries=0,
        fp_dividers=1,
    )
    return ProcessorConfig(name=name, clusters=(cluster,), fetch_width=8, retire_width=4)


def dual_cluster_2way_config(name: str = "dual-2way") -> ProcessorConfig:
    """2x2-way dual cluster (the 4-way machine's clustered counterpart)."""
    cluster = ClusterConfig(
        dispatch_queue_entries=32,
        int_physical_registers=32,
        fp_physical_registers=32,
        issue=IssueRules(total=2, integer=2, floating_point=1, memory=1, control=1),
        operand_buffer_entries=8,
        result_buffer_entries=8,
        fp_dividers=1,
    )
    return ProcessorConfig(name=name, clusters=(cluster, cluster), fetch_width=8, retire_width=4)


def with_buffer_entries(config: ProcessorConfig, entries: int) -> ProcessorConfig:
    """Ablation helper: change operand/result buffer depth on every cluster."""
    clusters = tuple(
        replace(c, operand_buffer_entries=entries, result_buffer_entries=entries)
        for c in config.clusters
    )
    return replace(config, clusters=clusters, name=f"{config.name}-buf{entries}")


def default_assignment_for(config: ProcessorConfig) -> RegisterAssignment:
    """The register-to-cluster map matching a configuration's shape.

    One cluster gets the monolithic map, two the paper's even/odd map,
    and N > 2 the modulo-N generalization (``RegisterAssignment.
    round_robin``, which coincides with even/odd at N = 2).
    """
    if config.num_clusters == 1:
        return RegisterAssignment.single_cluster()
    if config.num_clusters == 2:
        return RegisterAssignment.even_odd_dual()
    return RegisterAssignment.round_robin(config.num_clusters)
