"""The cycle-level multicluster processor model.

One class simulates both machines of Section 4: a single-cluster
configuration degenerates to a conventional out-of-order superscalar (no
dual distribution, no transfer buffers), while a multi-cluster
configuration adds the distribution, master/slave execution, and
transfer-buffer protocols of Section 2.1.

Pipeline (Section 4.1):

* **fetch** — up to 12 instructions/cycle from the I-cache, in trace
  order; a fetch group ends at a taken branch; a mispredicted conditional
  branch halts fetch until the branch executes (trace-driven simulation
  never fetches the wrong path; it charges the time the real machine
  would have wasted there).
* **distribute/rename/insert** — in order, one front-end cycle after
  fetch; an instruction (and everything younger) stalls when a dispatch
  queue entry or a physical register it needs is unavailable.
* **issue** — greedy oldest-first per cluster, bounded by Table 1's total
  and per-class limits; slave copies forwarding an operand additionally
  need an operand-transfer-buffer entry in the master's cluster, masters
  forwarding a result need a result-transfer-buffer entry in the slave's
  cluster (both checked at issue, per Section 2.1).
* **execute/writeback** — Table 1 latencies; the FP divider is not
  pipelined; loads take the load-delay slot plus D-cache/memory time;
  branch predictor tables update here (not at prediction).
* **retire** — in order, up to 8/cycle; frees previously-mapped physical
  registers.

Instruction-replay exceptions: when the oldest unretired instruction has
been ready but blocked on a full transfer buffer for
``config.replay_threshold`` consecutive cycles, every younger instruction
is squashed and refetched (Section 2.1 notes replay is "required to avoid
issue deadlock"; the exact trigger lives in the thesis [3] — this is the
simplest trigger consistent with the text).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.distribution import DistributionPlan, Scenario, plan_for_instruction
from repro.core.registers import RegisterAssignment
from repro.errors import ConfigError, SimulationError, WatchdogTimeout
from repro.isa.opcodes import InstrClass, Opcode
from repro.isa.registers import RegisterClass
from repro.obs.trace import TraceRecorder, iter_events
from repro.uarch.branch_predictor import McFarlingPredictor
from repro.uarch.buffers import TransferBuffer
from repro.uarch.caches import Cache
from repro.uarch.config import ClusterConfig, ProcessorConfig
from repro.uarch.rename import ClusterRename
from repro.uarch.stats import ClusterStats, SimulationStats
from repro.uarch.uop import RobEntry, Role, Uop, UopState
from repro.workloads.trace import DynamicInstruction


__all__ = [
    "Processor",
    "SimulationError",
    "SimulationResult",
    "WatchdogTimeout",
    "simulate",
]


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    config_name: str
    stats: SimulationStats

    @property
    def cycles(self) -> int:
        return self.stats.cycles


class _Cluster:
    """Run-time state of one cluster."""

    def __init__(self, index: int, config: ClusterConfig, assignment: RegisterAssignment) -> None:
        self.index = index
        self.config = config
        accessible = [
            reg
            for reg in _accessible_registers(assignment, index)
        ]
        self.rename = ClusterRename(
            config.int_physical_registers, config.fp_physical_registers, accessible
        )
        self.queue_free = config.dispatch_queue_entries
        #: min-heap of (seq, phase, uop) — ready, waiting to issue.
        self.ready: list[tuple[int, int, Uop]] = []
        self.operand_buffer = TransferBuffer(
            config.operand_buffer_entries, f"operand-c{index}"
        )
        self.result_buffer = TransferBuffer(
            config.result_buffer_entries, f"result-c{index}"
        )
        self.divider_free_at = [0] * config.fp_dividers
        self.stats = ClusterStats()


def _accessible_registers(assignment: RegisterAssignment, cluster: int):
    from repro.isa.registers import all_registers

    for reg in all_registers():
        if reg.is_zero:
            continue
        if cluster in assignment.clusters_of(reg):
            yield reg


def _issue_category(iclass: InstrClass) -> str:
    if iclass.is_integer:
        return "integer"
    if iclass.is_fp:
        return "fp"
    if iclass.is_memory:
        return "memory"
    return "control"


class Processor:
    """Trace-driven, cycle-level model of a (multi)cluster processor."""

    def __init__(self, config: ProcessorConfig, assignment: RegisterAssignment) -> None:
        if config.num_clusters != assignment.num_clusters:
            raise ConfigError(
                f"config has {config.num_clusters} clusters but the register "
                f"assignment has {assignment.num_clusters}",
                config=config.name,
            )
        self.config = config
        self.assignment = assignment
        self.clusters = [
            _Cluster(i, c, assignment) for i, c in enumerate(config.clusters)
        ]
        self.predictor = McFarlingPredictor(config.predictor)
        self.icache = Cache(config.icache, config.memory_latency, "icache")
        self.dcache = Cache(config.dcache, config.memory_latency, "dcache")
        self.stats = SimulationStats(clusters=[c.stats for c in self.clusters])

        # Front end.
        self._trace: Sequence[DynamicInstruction] = ()
        self._fetch_index = 0
        self._fetch_buffer: deque[tuple[DynamicInstruction, int, bool]] = deque()
        self._fetch_stall_until = 0
        self._mispredict_block_seq: Optional[int] = None
        self._last_fetch_line = -1

        # Back end.
        self._rob: deque[RobEntry] = deque()
        self._events: dict[int, list[tuple]] = {}
        self._event_cycles: list[int] = []
        self._pending_stores: dict[int, Uop] = {}
        self._store_waiters: dict[int, list[Uop]] = {}
        self._plan_cache: dict[int, DistributionPlan] = {}
        self._homeless_next = 0
        self._max_issued_seq = -1
        self._max_dispatched_seq = -1
        # Dynamic register reassignment (Section 6 extension).
        self._reassign_ready: Optional[int] = None
        self._reassigned_seqs: set[int] = set()
        self.cycle = 0

        # Observability substrate (repro.obs).  All three default to
        # ``None`` and cost the hot loop one attribute load + None check
        # each when disabled.
        #: Optional typed event recorder for fetch/dispatch/issue/
        #: writeback/retire events — the data behind the Figure 2-5
        #: execution timelines.  See the ``event_log`` property for the
        #: legacy list-based interface.
        self.recorder: Optional[TraceRecorder] = None
        #: Optional per-cycle callback ``hook(processor, cycle)`` —
        #: installed by ``obs.metrics.PipelineMetrics.attach``.
        self.metrics_hook = None
        #: Optional ``obs.stall.StallAccounting`` classifying every
        #: non-issuing slot of every cycle.
        self.stall_acct = None

        # Robustness substrate.
        #: Ring buffer of the last-N pipeline events (dispatch/issue/
        #: retire/transfer per cluster) dumped when the model fails.
        self._recent: deque[tuple[int, str, int, str, int]] = deque(
            maxlen=config.diag_ring_entries
        )
        #: Runtime fault injectors (tests); called once per cycle.
        self.fault_hooks: list = []
        #: Watchdog bookkeeping: last cycle with any pipeline activity.
        self._last_progress_cycle = 0
        self._limit = 0
        if config.self_check:
            from repro.robustness.invariants import InvariantChecker

            self._invariants: Optional[InvariantChecker] = InvariantChecker(self)
        else:
            self._invariants = None

    def install_fault(self, fault) -> None:
        """Attach a runtime fault injector (see robustness.faultinject)."""
        self.fault_hooks.append(fault)

    @property
    def event_log(self):
        """Legacy list-style view of the recorded pipeline events.

        Historically this was ``Optional[list[tuple]]`` that callers
        assigned ``[]`` to opt in.  It now proxies :attr:`recorder`:
        reading returns the recorder's retained events (``None`` when
        tracing is off), and assigning a list installs an in-memory
        recorder seeded with it, so existing callers work unchanged.
        """
        recorder = self.recorder
        return None if recorder is None else recorder.events

    @event_log.setter
    def event_log(self, value) -> None:
        if value is None:
            self.recorder = None
        elif isinstance(value, TraceRecorder):
            self.recorder = value
        else:
            recorder = TraceRecorder.memory()
            recorder.sinks[0].events.extend(iter_events(value))
            self.recorder = recorder

    @property
    def rob_occupancy(self) -> int:
        """In-flight (dispatched, unretired) dynamic instructions."""
        return len(self._rob)

    @property
    def fetch_buffer_occupancy(self) -> int:
        """Fetched instructions not yet inserted into a dispatch queue."""
        return len(self._fetch_buffer)

    # ================================================================= API
    def run(self, trace: Sequence[DynamicInstruction], max_cycles: int = 0) -> SimulationResult:
        """Simulate ``trace`` to completion and return the statistics."""
        self.start(trace, max_cycles)
        self.advance()
        return self.finalize()

    def start(self, trace: Sequence[DynamicInstruction], max_cycles: int = 0) -> None:
        """Arm the processor to simulate ``trace``.

        The watchdog cycle budget is ``max_cycles`` when given, else
        ``config.cycle_budget``, else a generous default derived from the
        trace length.  Use with :meth:`advance`/:meth:`finalize` for
        incremental simulation (checkpointing); :meth:`run` wraps all
        three.
        """
        self._trace = trace
        self._limit = (
            max_cycles or self.config.cycle_budget or (len(trace) * 100 + 100_000)
        )
        self._last_progress_cycle = self.cycle

    def advance(self, max_steps: int = 0) -> bool:
        """Step the simulation; True once the whole trace has retired.

        ``max_steps`` bounds the number of cycle steps taken in this call
        (0 = run to completion) — the checkpointing granularity.

        Raises:
            WatchdogTimeout: the cycle budget was exceeded, or no pipeline
                stage made forward progress for ``config.progress_window``
                cycles; carries the diagnostic ring-buffer dump.
            SimulationError: the model deadlocked (no pending events).
        """
        window = self.config.progress_window
        steps = 0
        while not self._finished():
            if max_steps and steps >= max_steps:
                return False
            self._step()
            steps += 1
            if self.cycle > self._limit:
                raise WatchdogTimeout(
                    f"exceeded cycle budget {self._limit}",
                    cycle=self.cycle,
                    seq=self._rob[0].seq if self._rob else self._fetch_index,
                    config=self.config.name,
                    diagnostics=self.diagnostic_dump(),
                )
            if window and self.cycle - self._last_progress_cycle > window:
                raise WatchdogTimeout(
                    f"no forward progress for {window} cycles "
                    "(no fetch, dispatch, issue, retire, or event activity)",
                    cycle=self.cycle,
                    seq=self._rob[0].seq if self._rob else self._fetch_index,
                    config=self.config.name,
                    diagnostics=self.diagnostic_dump(),
                )
        return True

    def finalize(self) -> SimulationResult:
        """Collect the statistics of a completed simulation."""
        self.stats.cycles = self.cycle
        self.stats.icache_accesses = self.icache.stats.accesses
        self.stats.icache_misses = self.icache.stats.misses
        self.stats.icache_merged_misses = self.icache.stats.merged_misses
        self.stats.dcache_accesses = self.dcache.stats.accesses
        self.stats.dcache_misses = self.dcache.stats.misses
        self.stats.dcache_merged_misses = self.dcache.stats.merged_misses
        self.stats.branch_predictions = self.predictor.stats.predictions
        self.stats.branch_mispredictions = self.predictor.stats.mispredictions
        for cluster in self.clusters:
            cluster.stats.operand_buffer = cluster.operand_buffer.stats
            cluster.stats.result_buffer = cluster.result_buffer.stats
        if self.stall_acct is not None:
            self.stats.stall_attribution = self.stall_acct.as_dict(self.cycle)
        return SimulationResult(self.config.name, self.stats)

    def diagnostic_dump(self) -> list[str]:
        """Post-mortem snapshot: machine state plus the recent-event ring."""
        lines = [
            f"cycle={self.cycle} fetch_index={self._fetch_index}/{len(self._trace)} "
            f"rob={len(self._rob)} fetch_buffer={len(self._fetch_buffer)} "
            f"pending_event_cycles={len(self._event_cycles)}"
        ]
        if self._rob:
            head = self._rob[0]
            copies = " ".join(
                f"{u.role.value}@c{u.cluster}:{u.state.value}" for u in head.uops
            )
            lines.append(
                f"rob head: seq={head.seq} {head.dyn.instr.format()} [{copies}]"
            )
        for cluster in self.clusters:
            lines.append(
                f"cluster {cluster.index}: queue_free={cluster.queue_free} "
                f"ready={len(cluster.ready)} "
                f"operand-buf={cluster.operand_buffer.occupancy}"
                f"/{cluster.operand_buffer.capacity} "
                f"result-buf={cluster.result_buffer.occupancy}"
                f"/{cluster.result_buffer.capacity}"
            )
        lines.append(f"last {len(self._recent)} events (cycle event seq role cluster):")
        lines.extend(
            f"  {c:>8} {event:<9} #{seq} {role}@c{cl}"
            for c, event, seq, role, cl in self._recent
        )
        return lines

    # ============================================================ main loop
    def _finished(self) -> bool:
        return (
            self._fetch_index >= len(self._trace)
            and not self._fetch_buffer
            and not self._rob
        )

    def _step(self) -> None:
        cycle = self.cycle
        for fault in self.fault_hooks:
            fault(self, cycle)
        events = self._process_events(cycle)
        for cluster in self.clusters:
            cluster.operand_buffer.tick(cycle)
            cluster.result_buffer.tick(cycle)
        retired = self._retire(cycle)
        issued_any = self._issue_all(cycle)
        dispatched = self._dispatch(cycle)
        fetched = self._fetch(cycle)
        self._check_replay(cycle)
        if events or retired or issued_any or dispatched or fetched:
            self._last_progress_cycle = cycle
        if not issued_any and not dispatched and not fetched and retired == 0:
            self._maybe_fast_forward(cycle)
        if self._invariants is not None:
            self._invariants.check_cycle(cycle)
        hook = self.metrics_hook
        if hook is not None:
            hook(self, cycle)
        self.cycle += 1

    def _maybe_fast_forward(self, cycle: int) -> None:
        """Jump to the next interesting cycle when nothing can progress.

        Only taken when no uop is ready anywhere (ready-but-blocked uops
        must keep counting toward the replay threshold cycle by cycle).
        """
        if any(c.ready for c in self.clusters):
            return
        candidates = []
        if self._event_cycles:
            candidates.append(self._event_cycles[0])
        can_fetch = (
            self._fetch_index < len(self._trace)
            and self._mispredict_block_seq is None
        )
        if can_fetch and self._fetch_stall_until > cycle:
            candidates.append(self._fetch_stall_until)
        if self._fetch_buffer:
            # Head of the fetch buffer becomes dispatchable after the
            # front-end latency.
            candidates.append(self._fetch_buffer[0][1] + self.config.frontend_depth)
        if self._reassign_ready is not None:
            candidates.append(self._reassign_ready)
        if not candidates:
            if self._finished():
                return
            raise SimulationError(
                "deadlock with no pending events",
                cycle=cycle,
                seq=self._rob[0].seq if self._rob else None,
                config=self.config.name,
                diagnostics=self.diagnostic_dump(),
            )
        target = min(candidates)
        if target > cycle + 1:
            acct = self.stall_acct
            if acct is not None:
                # The skipped cycles issue nothing; attribute their slots
                # with the same rules as a stepped idle cycle.
                acct.note_skipped(
                    target - cycle - 1,
                    [
                        c.queue_free < c.config.dispatch_queue_entries
                        for c in self.clusters
                    ],
                    self._fetch_index >= len(self._trace) and not self._fetch_buffer,
                )
            self.cycle = target - 1  # _step will +1

    # ---------------------------------------------------------------- events
    def _schedule(self, cycle: int, event: tuple) -> None:
        bucket = self._events.get(cycle)
        if bucket is None:
            self._events[cycle] = [event]
            heapq.heappush(self._event_cycles, cycle)
        else:
            bucket.append(event)

    def _process_events(self, cycle: int) -> int:
        processed = 0
        while self._event_cycles and self._event_cycles[0] <= cycle:
            event_cycle = heapq.heappop(self._event_cycles)
            for event in self._events.pop(event_cycle, ()):  # noqa: B909
                processed += 1
                kind = event[0]
                if kind == "complete":
                    self._complete_uop(event[1], event_cycle)
                elif kind == "wake":
                    self._wake(event[1])
                elif kind == "fetch_resume":
                    if self._mispredict_block_seq == event[1]:
                        self._mispredict_block_seq = None
                        self._fetch_stall_until = max(
                            self._fetch_stall_until, event_cycle
                        )
        return processed

    def _log(self, cycle: int, event: str, seq: int, role: str = "-", cluster: int = -1) -> None:
        self._recent.append((cycle, event, seq, role, cluster))
        recorder = self.recorder
        if recorder is not None:
            recorder.record(cycle, event, seq, role, cluster)

    def _wake(self, uop: Uop) -> None:
        """One outstanding dependency of ``uop`` resolved."""
        if uop.entry.retired or uop.entry.squashed:
            return
        if uop.state not in (UopState.WAITING, UopState.SUSPENDED):
            return
        uop.wait_count -= 1
        if uop.wait_count <= 0:
            phase = 1 if uop.state is UopState.SUSPENDED else 0
            uop.state = UopState.READY
            heapq.heappush(self.clusters[uop.cluster].ready, (uop.seq, phase, uop))

    # ---------------------------------------------------------------- fetch
    def _fetch(self, cycle: int) -> bool:
        if self._mispredict_block_seq is not None or cycle < self._fetch_stall_until:
            self.stats.fetch_stall_cycles += 1
            return False
        trace = self._trace
        n = len(trace)
        if self._fetch_index >= n:
            return False
        space = self.config.fetch_width * 2 - len(self._fetch_buffer)
        fetched = 0
        while fetched < self.config.fetch_width and space > 0 and self._fetch_index < n:
            dyn = trace[self._fetch_index]
            line = self.icache.line_of(dyn.pc)
            if line != self._last_fetch_line:
                ready = self.icache.access(dyn.pc, cycle)
                self._last_fetch_line = line
                if ready > cycle:
                    self._fetch_stall_until = ready
                    break
            predicted_taken = False
            opcode = dyn.instr.opcode
            if opcode.is_control:
                if opcode.is_conditional_branch:
                    prediction = self.predictor.predict(
                        dyn.pc, bool(dyn.taken), dyn.seq
                    )
                    predicted_taken = prediction
                    if prediction != dyn.taken:
                        # Misprediction: the real machine fetches the wrong
                        # path from here until the branch executes.
                        self._fetch_buffer.append((dyn, cycle, True))
                        self._fetch_index += 1
                        self._mispredict_block_seq = dyn.seq
                        self._last_fetch_line = -1
                        return True
                else:
                    # Unconditional flow is 100% predictable (Section 4.1)
                    # but still ends the fetch group when it redirects.
                    predicted_taken = True
            self._fetch_buffer.append((dyn, cycle, False))
            self._fetch_index += 1
            fetched += 1
            space -= 1
            if predicted_taken and dyn.taken is not False:
                self._last_fetch_line = -1
                break
        return fetched > 0

    # -------------------------------------------------------------- dispatch
    def _dispatch(self, cycle: int) -> bool:
        budget = self.config.dispatch_width
        dispatched = False
        acct = self.stall_acct
        if acct is not None:
            acct.begin_dispatch()
        while budget > 0 and self._fetch_buffer:
            dyn, fetch_cycle, mispredicted = self._fetch_buffer[0]
            if cycle < fetch_cycle + self.config.frontend_depth:
                break
            if dyn.reassign is not None and dyn.seq not in self._reassigned_seqs:
                if not self._handle_reassignment(dyn, cycle):
                    break
            plan = self._plan_for(dyn)
            if not self._resources_available(dyn, plan):
                self.stats.dispatch_stall_cycles += 1
                break
            self._fetch_buffer.popleft()
            entry = self._make_entry(dyn, plan, fetch_cycle, cycle, mispredicted)
            for uop in entry.uops:
                self._log(cycle, "dispatch", uop.seq, uop.role.value, uop.cluster)
            self._rob.append(entry)
            budget -= len(entry.uops)
            dispatched = True
        return dispatched

    def _handle_reassignment(self, dyn: DynamicInstruction, cycle: int) -> bool:
        """Dynamic register reassignment (Section 6 extension).

        The hardware drains the pipeline (every older instruction retires),
        then moves the value of each architectural register whose cluster
        set changes (modelled at two registers per cycle plus a fixed
        overhead), then switches the map.  Returns True once the switch is
        complete and the carrier instruction may dispatch.
        """
        new_assignment: RegisterAssignment = dyn.reassign  # type: ignore[assignment]
        if self._rob:
            self.stats.reassignment_stall_cycles += 1
            return False
        if self._reassign_ready is None:
            from repro.isa.registers import all_registers

            moved = sum(
                1
                for reg in all_registers()
                if not reg.is_zero
                and self.assignment.clusters_of(reg)
                != new_assignment.clusters_of(reg)
            )
            self._reassign_ready = cycle + 4 + (moved + 1) // 2
        if cycle < self._reassign_ready:
            self.stats.reassignment_stall_cycles += 1
            return False
        # Perform the switch on the drained machine.
        self.assignment = new_assignment
        for cluster in self.clusters:
            cluster.rename = ClusterRename(
                cluster.config.int_physical_registers,
                cluster.config.fp_physical_registers,
                _accessible_registers(new_assignment, cluster.index),
            )
            cluster.ready = []
            cluster.queue_free = cluster.config.dispatch_queue_entries
        self._plan_cache.clear()
        self._pending_stores.clear()
        self._store_waiters.clear()
        self._reassign_ready = None
        self._reassigned_seqs.add(dyn.seq)
        self.stats.reassignments += 1
        return True

    def _plan_for(self, dyn: DynamicInstruction) -> DistributionPlan:
        instr = dyn.instr
        if not instr.named_registers():
            # No registers: the hardware may send it anywhere; alternate to
            # spread branch/jump traffic (config.alternate_homeless).
            preferred = self._homeless_next if self.config.alternate_homeless else 0
            self._homeless_next = (
                (self._homeless_next + 1) % self.config.num_clusters
                if self.config.alternate_homeless
                else 0
            )
            return plan_for_instruction(instr, self.assignment, preferred=preferred)
        plan = self._plan_cache.get(instr.uid)
        if plan is None:
            plan = plan_for_instruction(instr, self.assignment)
            self._plan_cache[instr.uid] = plan
        return plan

    def _note_dispatch_block(self, cause: str) -> None:
        acct = self.stall_acct
        if acct is not None:
            acct.note_dispatch_block(cause)

    def _resources_available(self, dyn: DynamicInstruction, plan: DistributionPlan) -> bool:
        instr = dyn.instr
        dest = instr.effective_dest
        master = self.clusters[plan.master]
        if master.queue_free < 1:
            master.stats.queue_full_stalls += 1
            self._note_dispatch_block("queue_full")
            return False
        master_writes = dest is not None and (plan.global_dest or not plan.result_forwarded)
        if master_writes:
            need_int = 1 if dest.rclass is RegisterClass.INT else 0
            if not master.rename.can_allocate(need_int, 1 - need_int):
                master.stats.regfile_full_stalls += 1
                self._note_dispatch_block("regfile_full")
                return False
        if plan.is_dual:
            for index in plan.slaves:
                slave = self.clusters[index]
                if slave.queue_free < 1:
                    slave.stats.queue_full_stalls += 1
                    self._note_dispatch_block("queue_full")
                    return False
                slave_writes = dest is not None and (
                    plan.global_dest or index in plan.result_receivers
                )
                if slave_writes:
                    need_int = 1 if dest.rclass is RegisterClass.INT else 0
                    if not slave.rename.can_allocate(need_int, 1 - need_int):
                        slave.stats.regfile_full_stalls += 1
                        self._note_dispatch_block("regfile_full")
                        return False
        return True

    def _make_entry(
        self,
        dyn: DynamicInstruction,
        plan: DistributionPlan,
        fetch_cycle: int,
        cycle: int,
        mispredicted: bool,
    ) -> RobEntry:
        entry = RobEntry(dyn.seq, dyn, plan)
        entry.fetch_cycle = fetch_cycle
        entry.dispatch_cycle = cycle
        instr = dyn.instr
        opcode = instr.opcode
        dest = instr.effective_dest
        # Count distribution statistics once per dynamic instruction —
        # re-dispatches after a replay squash do not inflate the counters.
        if dyn.seq > self._max_dispatched_seq:
            self._max_dispatched_seq = dyn.seq
            self.stats.by_scenario[plan.scenario] = (
                self.stats.by_scenario.get(plan.scenario, 0) + 1
            )
            if plan.is_dual:
                self.stats.dual_distributed += 1
                if plan.forwarded_src_indices:
                    self.stats.operand_forwards += 1
                if plan.result_forwarded:
                    self.stats.result_forwards += 1
        if opcode.is_conditional_branch:
            entry.branch_tag = dyn.seq
            entry.mispredicted = mispredicted

        master_cluster = self.clusters[plan.master]
        master = Uop(entry, Role.MASTER, plan.master, opcode)
        forwarded = set(plan.forwarded_src_indices)
        for i, src in enumerate(instr.srcs):
            if src.is_zero or i in forwarded:
                continue
            self._add_source(master, master_cluster, src)
        master.writes_dest = dest is not None and (
            plan.global_dest or not plan.result_forwarded
        )
        if master.writes_dest:
            self._allocate_dest(entry, master, master_cluster, dest)
        master.needs_result_entry = plan.result_forwarded
        if forwarded:
            master.intercopy_pending = True
            # One wake per shipping slave: each distinct home cluster
            # issues one slave copy that forwards its operands together.
            master.wait_count += len(set(plan.forwarded_homes))
        entry.uops.append(master)
        master_cluster.queue_free -= 1
        master_cluster.stats.peak_queue_occupancy = max(
            master_cluster.stats.peak_queue_occupancy,
            master_cluster.config.dispatch_queue_entries - master_cluster.queue_free,
        )

        if plan.is_dual:
            # One slave copy per helper cluster.  Two-cluster machines
            # always have exactly one; an N-cluster instruction naming
            # registers homed in three or more clusters gets one shipper
            # per remote source home plus result-only copies for every
            # remote destination cluster.
            for index in plan.slaves:
                slave_cluster = self.clusters[index]
                slave = Uop(entry, Role.SLAVE, index, opcode)
                own_srcs = [
                    i
                    for i, home in zip(
                        plan.forwarded_src_indices, plan.forwarded_homes
                    )
                    if home == index
                ]
                for i in own_srcs:
                    self._add_source(slave, slave_cluster, instr.srcs[i])
                slave.needs_operand_entry = bool(own_srcs)
                slave.writes_dest = dest is not None and (
                    plan.global_dest or index in plan.result_receivers
                )
                if slave.writes_dest:
                    self._allocate_dest(entry, slave, slave_cluster, dest)
                if not own_srcs:
                    # Result-only slave (scenarios 3 and 4): waits for the
                    # master's result before it can issue.
                    slave.forwards_result_only = True
                    slave.intercopy_pending = True
                    slave.wait_count += 1
                slave.partner = master
                entry.uops.append(slave)
                slave_cluster.queue_free -= 1
                slave_cluster.stats.peak_queue_occupancy = max(
                    slave_cluster.stats.peak_queue_occupancy,
                    slave_cluster.config.dispatch_queue_entries
                    - slave_cluster.queue_free,
                )
            master.partner = entry.uops[1]

        # Memory dependences: a load waits on the youngest older store to
        # the same address still in flight (perfect disambiguation with
        # store-to-load forwarding).
        if opcode.is_load and dyn.address is not None:
            dep = self._pending_stores.get(dyn.address)
            if dep is not None and not dep.entry.retired and dep.state is not UopState.DONE:
                master.store_dep = dep
                master.wait_count += 1
                self._store_waiters.setdefault(dep.seq, []).append(master)
        elif opcode.is_store and dyn.address is not None:
            self._pending_stores[dyn.address] = master

        entry.outstanding = len(entry.uops)
        for uop in entry.uops:
            if uop.wait_count == 0:
                uop.state = UopState.READY
                heapq.heappush(self.clusters[uop.cluster].ready, (uop.seq, 0, uop))
        return entry

    def _add_source(self, uop: Uop, cluster: _Cluster, src) -> None:
        rfile = cluster.rename.file_for(src)
        phys = rfile.lookup(src)
        uop.src_phys.append((src.rclass, phys))
        if not rfile.ready[phys]:
            uop.wait_count += 1
            rfile.waiters[phys].append(uop)

    def _allocate_dest(self, entry: RobEntry, uop: Uop, cluster: _Cluster, dest) -> None:
        rfile = cluster.rename.file_for(dest)
        phys, prev = rfile.allocate(dest)
        uop.dest_phys = (dest.rclass, phys)
        entry.rename_undo.append((cluster.index, dest.rclass, dest.uid, phys, prev))

    # ----------------------------------------------------------------- issue
    def _issue_all(self, cycle: int) -> bool:
        issued_any = False
        for cluster in self.clusters:
            if self._issue_cluster(cluster, cycle):
                issued_any = True
        return issued_any

    def _issue_cluster(self, cluster: _Cluster, cycle: int) -> bool:
        rules = cluster.config.issue
        remaining_total = rules.total
        remaining: dict[str, int] = {
            "integer": rules.integer,
            "fp": rules.floating_point,
            "memory": rules.memory,
            "control": rules.control,
        }
        skipped: list[tuple[int, int, Uop]] = []
        issued = 0
        class_limited = 0
        blocked_buffer = 0
        blocked_divider = 0
        ready = cluster.ready
        while ready and remaining_total > 0:
            seq, phase, uop = heapq.heappop(ready)
            if uop.entry.retired or uop.entry.squashed or uop.state is not UopState.READY:
                continue
            category = _issue_category(uop.iclass)
            if remaining[category] <= 0:
                class_limited += 1
                skipped.append((seq, phase, uop))
                continue
            blocked = self._issue_blocked(uop, cluster, cycle, phase)
            if blocked:
                if uop.blocked_on_buffer_since < 0 and blocked == "buffer":
                    uop.blocked_on_buffer_since = cycle
                if blocked == "buffer":
                    blocked_buffer += 1
                    if uop.needs_operand_entry and phase == 0:
                        buffer = self.clusters[uop.partner.cluster].operand_buffer
                    else:
                        # Master blocked on a result entry: charge the
                        # first receiver buffer that is actually full.
                        buffer = self.clusters[uop.partner.cluster].result_buffer
                        for index in uop.entry.plan.result_receivers:
                            candidate = self.clusters[index].result_buffer
                            if candidate.is_full:
                                buffer = candidate
                                break
                    buffer.stats.full_stall_cycles += 1
                else:
                    blocked_divider += 1
                skipped.append((seq, phase, uop))
                continue
            self._do_issue(uop, cluster, cycle, phase)
            remaining[category] -= 1
            remaining_total -= 1
            issued += 1
        for item in skipped:
            heapq.heappush(ready, item)
        acct = self.stall_acct
        if acct is not None:
            acct.note_issue(
                cluster.index,
                issued,
                blocked_buffer,
                blocked_divider,
                class_limited,
                occupied=cluster.queue_free < cluster.config.dispatch_queue_entries,
                draining=self._fetch_index >= len(self._trace)
                and not self._fetch_buffer,
            )
        return issued > 0

    def _issue_blocked(
        self, uop: Uop, cluster: _Cluster, cycle: int, phase: int
    ) -> Optional[str]:
        """Why ``uop`` cannot issue this cycle, or ``None`` if it can."""
        is_result_phase_slave = uop.role is Role.SLAVE and (
            uop.forwards_result_only or phase == 1
        )
        if uop.iclass is InstrClass.FP_DIVIDE:
            if uop.role is Role.MASTER and not any(
                t <= cycle for t in cluster.divider_free_at
            ):
                return "divider"
        if uop.needs_operand_entry and phase == 0 and not is_result_phase_slave:
            buf = self.clusters[uop.partner.cluster].operand_buffer
            # A sibling slave of the same instruction may already hold the
            # (shared) entry; only a buffer full of *other* instructions
            # blocks the ship.
            if buf.is_full and uop.seq not in buf.entries:
                return "buffer"
        if uop.role is Role.MASTER and uop.needs_result_entry:
            for index in uop.entry.plan.result_receivers:
                if self.clusters[index].result_buffer.is_full:
                    return "buffer"
        return None

    def _do_issue(self, uop: Uop, cluster: _Cluster, cycle: int, phase: int) -> None:
        if self._invariants is not None:
            self._invariants.check_issue(uop, cluster, cycle, phase)
        uop.state = UopState.ISSUED
        uop.issue_cycle = cycle
        uop.blocked_on_buffer_since = -1
        self._log(cycle, "issue" if phase == 0 else "reissue", uop.seq, uop.role.value, uop.cluster)
        cluster.stats.note_issue(_issue_category(uop.iclass))
        self.stats.uops_executed += 1
        if uop.seq < self._max_issued_seq:
            self.stats.issue_disorder_accum += self._max_issued_seq - uop.seq
        else:
            self._max_issued_seq = uop.seq
        self.stats.issue_disorder_samples += 1

        # Dispatch-queue entry is freed at issue (first issue only).
        if phase == 0:
            cluster.queue_free += 1

        is_operand_phase_slave = (
            uop.role is Role.SLAVE and uop.needs_operand_entry and phase == 0
        )
        is_result_phase_slave = uop.role is Role.SLAVE and (
            uop.forwards_result_only or phase == 1
        )

        if is_operand_phase_slave:
            # Slave reads the operand from its register file and ships it to
            # the master's operand transfer buffer (written at writeback).
            master_cluster = self.clusters[uop.partner.cluster]
            master_cluster.operand_buffer.allocate(uop.seq, cycle)
            # The inter-copy dependence is removed when the slave issues;
            # the master may issue as soon as the next cycle (Section 2.1).
            self._schedule(cycle + 1, ("wake", uop.partner))
            if uop.writes_dest:
                # Scenario 5: operand sent, now suspend awaiting the result.
                uop.state = UopState.SUSPENDED
                uop.wait_count = 1
                return
            # Scenario 2: the slave completes after writeback.
            self._schedule(cycle + 1, ("complete", uop))
            return

        if is_result_phase_slave:
            # Slave obtains the forwarded result, frees the result-buffer
            # entry, and writes its register file (one cycle).
            cluster.result_buffer.free_at(uop.seq, cycle + 1)
            self._schedule(cycle + 1, ("complete", uop))
            return

        # Master (or single-distributed) execution.
        latency = self._execution_latency(uop, cycle)
        done = cycle + latency
        if uop.iclass is InstrClass.FP_DIVIDE:
            for i, t in enumerate(cluster.divider_free_at):
                if t <= cycle:
                    cluster.divider_free_at[i] = done
                    break
        if (
            uop.role is Role.MASTER
            and uop.partner is not None
            and uop.entry.plan.forwarded_src_indices
        ):
            # This master consumes the forwarded operand(s): the entry in
            # its own cluster's operand buffer frees next cycle (Section
            # 2.1).  Operands shipped by different slaves of the same
            # instruction arrive as one packet and share the entry.
            cluster.operand_buffer.free_at(uop.seq, cycle + 1)
        if uop.needs_result_entry:
            # The receiver's dependence is removed two cycles before the
            # master finishes; it can issue one cycle after the master at
            # best.  Every cluster that writes the destination receives
            # the result through its own result transfer buffer.
            wake_at = max(cycle + 1, done - 1)
            for receiver in uop.entry.uops[1:]:
                if receiver.writes_dest:
                    self.clusters[receiver.cluster].result_buffer.allocate(
                        uop.seq, cycle
                    )
                    self._schedule(wake_at, ("wake", receiver))
        self._schedule(done, ("complete", uop))

    def _execution_latency(self, uop: Uop, cycle: int) -> int:
        opcode = uop.opcode
        if opcode.is_load:
            address = uop.entry.dyn.address
            if address is None:
                return self.config.latencies.latency_of(opcode)
            if uop.store_dep is not None:
                # Store-to-load forwarding: hit timing, no cache fill.
                self.dcache.stats.accesses += 1
                return self.config.latencies.latency_of(opcode)
            line_ready = self.dcache.access(address, cycle)
            return (line_ready - cycle) + self.config.latencies.latency_of(opcode)
        if opcode.is_store:
            address = uop.entry.dyn.address
            if address is not None:
                self.dcache.access(address, cycle, write=True)
            return self.config.latencies.latency_of(opcode)
        return self.config.latencies.latency_of(opcode)

    # ------------------------------------------------------------- writeback
    def _complete_uop(self, uop: Uop, cycle: int) -> None:
        entry = uop.entry
        if entry.retired or entry.squashed:  # type: ignore[attr-defined]
            return
        if uop.state is UopState.DONE:
            return
        uop.state = UopState.DONE
        uop.done_cycle = cycle
        self._log(cycle, "complete", uop.seq, uop.role.value, uop.cluster)
        if self._invariants is not None:
            self._invariants.check_writeback(uop, cycle)

        # Marking the needs-operand-entry flag consumed (master path freed
        # at issue already); slave's operand entry is freed by master issue.
        if uop.dest_phys is not None and uop.writes_dest:
            rclass, phys = uop.dest_phys
            rfile = self.clusters[uop.cluster].rename.files[rclass]
            for waiter in rfile.mark_ready(phys):
                self._wake(waiter)

        opcode = uop.opcode
        if uop.role is Role.MASTER:
            if opcode.is_conditional_branch:
                self.predictor.resolve(entry.branch_tag)
                if entry.mispredicted and self._mispredict_block_seq == entry.seq:
                    self._schedule(
                        cycle + self.config.mispredict_redirect,
                        ("fetch_resume", entry.seq),
                    )
            if opcode.is_store:
                dyn = entry.dyn
                if (
                    dyn.address is not None
                    and self._pending_stores.get(dyn.address) is uop
                ):
                    del self._pending_stores[dyn.address]
                for waiter in self._store_waiters.pop(uop.seq, ()):  # noqa: B909
                    self._wake(waiter)

        entry.outstanding -= 1

    # ---------------------------------------------------------------- retire
    def _retire(self, cycle: int) -> int:
        retired = 0
        rob = self._rob
        while rob and retired < self.config.retire_width:
            entry = rob[0]
            if not entry.completed:
                break
            rob.popleft()
            entry.retired = True
            self._log(cycle, "retire", entry.seq)
            if self._invariants is not None:
                self._invariants.check_retire(entry.seq, cycle)
            for cluster_index, rclass, _arch_uid, _phys, prev in entry.rename_undo:
                if prev is not None:
                    self.clusters[cluster_index].rename.files[rclass].release(prev)
            self.stats.instructions += 1
            retired += 1
        return retired

    # ---------------------------------------------------------------- replay
    def _check_replay(self, cycle: int) -> None:
        """Fire an instruction-replay exception when a transfer buffer is
        deadlock- or inversion-blocked (Section 2.1).

        A ready copy that has been unable to issue for
        ``replay_threshold`` consecutive cycles because a transfer buffer
        is full triggers a replay *if* at least one of the buffer's
        entries is held by a younger instruction — waiting is then not
        guaranteed to make progress (priority inversion; in the worst
        case, a true deadlock).  Entries held only by older instructions
        drain on their own, so no exception is needed.
        """
        if not self._rob:
            return
        threshold = self.config.replay_threshold
        for cluster in self.clusters:
            victim: Optional[Uop] = None
            for seq, phase, uop in cluster.ready:
                if (
                    uop.state is UopState.READY
                    and not uop.entry.squashed
                    and uop.blocked_on_buffer_since >= 0
                    and cycle - uop.blocked_on_buffer_since >= threshold
                ):
                    if victim is None or seq < victim.seq:
                        if phase == 0 and uop.needs_operand_entry:
                            buffer = self.clusters[uop.partner.cluster].operand_buffer
                        elif uop.needs_result_entry:
                            buffer = self.clusters[uop.partner.cluster].result_buffer
                            for index in uop.entry.plan.result_receivers:
                                candidate = self.clusters[index].result_buffer
                                if candidate.is_full:
                                    buffer = candidate
                                    break
                        else:
                            continue
                        if any(owner > seq for owner in buffer.entries):
                            victim = uop
            if victim is not None:
                self._replay(victim.entry, cycle)
                return

    def _replay(self, survivor: RobEntry, cycle: int) -> None:
        """Instruction-replay exception: squash everything younger than
        ``survivor`` and refetch it."""
        self.stats.replay_exceptions += 1
        boundary = survivor.seq
        squashed: list[RobEntry] = []
        while self._rob and self._rob[-1].seq > boundary:
            squashed.append(self._rob.pop())
        self.stats.replay_squashed_instructions += len(squashed)

        for entry in squashed:
            entry.squashed = True
            # Undo renames in reverse allocation order.
            for cluster_index, rclass, arch_uid, phys, prev in reversed(entry.rename_undo):
                from repro.isa.registers import reg_from_uid

                rfile = self.clusters[cluster_index].rename.files[rclass]
                rfile.undo(reg_from_uid(arch_uid), phys, prev)
            for uop in entry.uops:
                if uop.state in (UopState.WAITING, UopState.READY):
                    self.clusters[uop.cluster].queue_free += 1
                dyn = entry.dyn
                if uop.opcode.is_store and dyn.address is not None:
                    if self._pending_stores.get(dyn.address) is uop:
                        del self._pending_stores[dyn.address]
                self._store_waiters.pop(uop.seq, None)
            if entry.branch_tag >= 0:
                self.predictor.abandon(entry.branch_tag)

        for cluster in self.clusters:
            cluster.operand_buffer.squash_younger(boundary)
            cluster.result_buffer.squash_younger(boundary)
            cluster.ready = [
                (seq, phase, uop)
                for seq, phase, uop in cluster.ready
                if seq <= boundary
            ]
            heapq.heapify(cluster.ready)

        # Rewind fetch to the instruction right after the survivor; the
        # trace index equals the sequence number by construction.  Pending
        # predictor state for un-dispatched (fetched) branches is dropped.
        for item in self._fetch_buffer:
            if item[0].seq > boundary and item[0].is_conditional:
                self.predictor.abandon(item[0].seq)
        self._fetch_buffer = deque(
            item for item in self._fetch_buffer if item[0].seq <= boundary
        )
        self._fetch_index = boundary + 1
        # Surviving loads waiting on a squashed store would hang (the store
        # vanished from the pending map and its waiter list was dropped):
        # clear the dependence.
        for entry in list(self._rob):
            for uop in entry.uops:
                if (
                    uop.store_dep is not None
                    and uop.store_dep.entry.squashed
                    and uop.state is UopState.WAITING
                ):
                    uop.store_dep = None
                    self._wake(uop)
        # Restart the blocked-cycle counters so the next replay decision is
        # based on post-squash behaviour.
        for entry in self._rob:
            for uop in entry.uops:
                uop.blocked_on_buffer_since = -1
        if self._mispredict_block_seq is not None and self._mispredict_block_seq > boundary:
            self._mispredict_block_seq = None
        self._fetch_stall_until = max(
            self._fetch_stall_until,
            cycle + self.config.frontend_depth + self.config.mispredict_redirect,
        )
        self._last_fetch_line = -1


def simulate(
    trace: Sequence[DynamicInstruction],
    config: ProcessorConfig,
    assignment: Optional[RegisterAssignment] = None,
) -> SimulationResult:
    """Convenience wrapper: build a processor and run ``trace`` on it.

    Honours ``config.engine`` — the model class comes from
    :func:`repro.uarch.engine.make_processor` (imported lazily; the
    engine module subclasses :class:`Processor`).
    """
    from repro.uarch.config import default_assignment_for
    from repro.uarch.engine import make_processor

    if assignment is None:
        assignment = default_assignment_for(config)
    return make_processor(config, assignment).run(trace)
