"""Set-associative caches with an inverted MSHR.

Section 4.1: both the 64 KB two-way I- and D-caches are non-blocking; the
data cache "is assumed to use an inverted MSHR, and thus, imposes no
restriction on the number of in-flight cache misses", and the memory
interface has a 16-cycle fetch latency and unlimited bandwidth.

The inverted-MSHR behaviour is modelled as an unbounded map from cache
line to the cycle its fill returns; accesses to a line already in flight
merge with the outstanding miss (no extra memory trip), exactly the
consequence of an inverted MSHR with unlimited bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.config import CacheConfig


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0
    merged_misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """LRU set-associative cache returning data-ready cycles."""

    def __init__(self, config: CacheConfig, memory_latency: int, name: str = "cache") -> None:
        self.config = config
        self.memory_latency = memory_latency
        self.name = name
        self.num_sets = config.num_sets
        self.line_shift = config.line_bytes.bit_length() - 1
        if config.line_bytes != 1 << self.line_shift:
            raise ValueError("line size must be a power of two")
        # Per set: list of tags, most recently used last.
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        # Inverted MSHR: line id -> cycle at which the fill completes.
        self._inflight: dict[int, int] = {}
        self.stats = CacheStats()

    def line_of(self, address: int) -> int:
        return address >> self.line_shift

    def access(self, address: int, cycle: int, write: bool = False) -> int:
        """Access ``address`` at ``cycle``; returns the data-ready cycle.

        Hits return ``cycle``.  Misses return ``cycle + memory_latency``;
        if the line is already being fetched the access merges and returns
        the outstanding fill's completion cycle.  Lines are installed (and
        LRU updated) immediately — a simplification that keeps the model
        single-pass; write misses allocate, too.
        """
        self.stats.accesses += 1
        self.expire_inflight(cycle)
        line = self.line_of(address)
        index = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return cycle
        self.stats.misses += 1
        ready = self._inflight.get(line)
        if ready is not None and ready > cycle:
            self.stats.merged_misses += 1
        else:
            ready = cycle + self.memory_latency
            self._inflight[line] = ready
        ways.append(tag)
        if len(ways) > self.config.associativity:
            ways.pop(0)
        return ready

    def probe(self, address: int) -> bool:
        """Non-destructive hit check (no LRU update, no fill)."""
        line = self.line_of(address)
        ways = self._sets[line % self.num_sets]
        return (line // self.num_sets) in ways

    def expire_inflight(self, cycle: int) -> None:
        """Drop completed fills from the in-flight map (housekeeping).

        Called from :meth:`access` on every lookup; the size guard keeps
        the rebuild amortized O(1), and only fills whose ready cycle has
        passed are dropped, so merge behaviour (and therefore every
        statistic) is unchanged — an expired entry would never have
        satisfied a merge anyway.
        """
        if len(self._inflight) > 4096:
            self._inflight = {
                line: ready for line, ready in self._inflight.items() if ready > cycle
            }
