"""McFarling combining branch predictor.

Section 4.1: "both processors use a branch prediction scheme proposed by
McFarling that comprises a bimodal predictor, a global history predictor,
and a mechanism to select between them; all other control flow
instructions are assumed to be 100% predictable."

Important timing detail (Section 4.2, footnote 2): "The prediction is made
at the point of insertion into the dispatch queue while the updating
occurs after the branch is executed."  The simulator therefore *predicts*
eagerly but queues counter updates until the branch executes — giving
larger dispatch queues more stale predictor state, the effect behind the
``compress`` anomaly in Table 2.

The global history register is updated at prediction time.  Because the
simulation is trace driven, fetch stalls on a misprediction until the
branch resolves, so no wrong-path history ever needs repair: the outcome
shifted in at prediction time is the trace's actual outcome.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.config import PredictorConfig


@dataclass
class PredictorStats:
    predictions: int = 0
    mispredictions: int = 0
    bimodal_correct: int = 0
    global_correct: int = 0
    chooser_picked_global: int = 0

    @property
    def accuracy(self) -> float:
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


def _counter_update(counter: int, taken: bool) -> int:
    """Saturating two-bit counter."""
    if taken:
        return min(counter + 1, 3)
    return max(counter - 1, 0)


class McFarlingPredictor:
    """Bimodal + global (gshare-indexed) + chooser, two-bit counters each."""

    def __init__(self, config: PredictorConfig) -> None:
        self.config = config
        self.bimodal = [2] * config.bimodal_entries  # weakly taken
        self.global_table = [2] * config.global_entries
        self.chooser = [2] * config.chooser_entries  # >=2 favours global
        self.history = 0
        self.history_mask = (1 << config.history_bits) - 1
        self.stats = PredictorStats()
        #: Updates waiting for their branch to execute: list of
        #: (bimodal index, global index, chooser index, taken,
        #:  bimodal_said, global_said).
        self._pending: dict[int, tuple[int, int, int, bool, bool, bool]] = {}

    # ------------------------------------------------------------- predict
    def predict(self, pc: int, actual_taken: bool, tag: int) -> bool:
        """Predict the branch at ``pc``; returns the predicted direction.

        ``actual_taken`` (from the trace) is shifted into the history
        register — see the module docstring for why this is sound — and is
        remembered so :meth:`resolve` can apply the table updates when the
        branch executes.  ``tag`` identifies the dynamic branch instance.
        """
        word = pc >> 2
        b_index = word % self.config.bimodal_entries
        g_index = ((word ^ self.history) & self.history_mask) % self.config.global_entries
        c_index = word % self.config.chooser_entries

        bimodal_says = self.bimodal[b_index] >= 2
        global_says = self.global_table[g_index] >= 2
        use_global = self.chooser[c_index] >= 2
        prediction = global_says if use_global else bimodal_says

        self.stats.predictions += 1
        if use_global:
            self.stats.chooser_picked_global += 1
        if prediction != actual_taken:
            self.stats.mispredictions += 1
        if bimodal_says == actual_taken:
            self.stats.bimodal_correct += 1
        if global_says == actual_taken:
            self.stats.global_correct += 1

        self._pending[tag] = (
            b_index,
            g_index,
            c_index,
            actual_taken,
            bimodal_says,
            global_says,
        )
        self.history = ((self.history << 1) | int(actual_taken)) & self.history_mask
        return prediction

    # ------------------------------------------------------------- resolve
    def resolve(self, tag: int) -> None:
        """Apply the queued table updates for a branch that just executed."""
        entry = self._pending.pop(tag, None)
        if entry is None:
            return
        b_index, g_index, c_index, taken, bimodal_said, global_said = entry
        self.bimodal[b_index] = _counter_update(self.bimodal[b_index], taken)
        self.global_table[g_index] = _counter_update(self.global_table[g_index], taken)
        if bimodal_said != global_said:
            # Train the chooser toward whichever component was right.
            self.chooser[c_index] = _counter_update(
                self.chooser[c_index], global_said == taken
            )

    def abandon(self, tag: int) -> None:
        """Drop a pending update (the branch was squashed by a replay)."""
        self._pending.pop(tag, None)
