"""Textual pipeline diagrams from the processor's recorded events.

Renders classic pipeline charts — one row per dynamic instruction, one
column per cycle — from a :class:`~repro.uarch.processor.Processor` run
with tracing enabled (a :class:`~repro.obs.trace.TraceRecorder` on
``processor.recorder``, or the legacy ``event_log`` list).
Dual-distributed instructions get one row per copy, making the
master/slave interplay of Figures 2-5 visible on real code:

    #0 addq r2, r1 -> r4   master@c0  ..D.IC
    #0                     slave @c1  ..DIC.

Stage letters: ``D`` dispatch, ``I`` issue, ``R`` re-issue (a scenario-5
slave's result phase), ``C`` complete, ``T`` retire.

Both entry points take any :data:`~repro.obs.trace.EventSource`: a
recorder, typed :class:`~repro.obs.trace.PipelineEvent` lists, or raw
5-tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.obs.trace import EventSource, iter_events
from repro.workloads.trace import DynamicInstruction

_STAGE_LETTER = {
    "dispatch": "D",
    "issue": "I",
    "reissue": "R",
    "complete": "C",
    "retire": "T",
}


@dataclass
class _Row:
    seq: int
    role: str
    cluster: int
    events: dict[int, str] = field(default_factory=dict)  # cycle -> letter


def build_rows(
    event_log: EventSource,
    first_seq: int = 0,
    last_seq: Optional[int] = None,
) -> list[_Row]:
    """Group recorded events into per-copy rows within a sequence window."""
    rows: dict[tuple[int, str, int], _Row] = {}
    retires: dict[int, int] = {}
    for cycle, kind, seq, role, cluster in iter_events(event_log):
        if seq < first_seq or (last_seq is not None and seq > last_seq):
            continue
        if kind == "retire":
            retires[seq] = cycle
            continue
        letter = _STAGE_LETTER.get(kind)
        if letter is None:
            continue
        key = (seq, role, cluster)
        row = rows.get(key)
        if row is None:
            row = rows[key] = _Row(seq, role, cluster)
        row.events[cycle] = letter
    # Attach retirement to each instruction's master row (or only row).
    for (seq, role, _cluster), row in rows.items():
        if role == "master" and seq in retires:
            cycle = retires[seq]
            row.events.setdefault(cycle, "T")
    return sorted(rows.values(), key=lambda r: (r.seq, r.role))


def render_pipeline(
    event_log: EventSource,
    trace: Optional[Sequence[DynamicInstruction]] = None,
    first_seq: int = 0,
    last_seq: Optional[int] = None,
    max_width: int = 64,
) -> str:
    """Render the pipeline chart as a string.

    Args:
        event_log: ``Processor.recorder`` (or ``event_log``) after a run.
        trace: optional trace for instruction disassembly in row labels.
        first_seq/last_seq: window of dynamic instructions to show.
        max_width: maximum number of cycle columns.
    """
    rows = build_rows(event_log, first_seq, last_seq)
    if not rows:
        return "(no events in window)"
    start = min(min(r.events) for r in rows if r.events)
    end = max(max(r.events) for r in rows if r.events)
    end = min(end, start + max_width - 1)

    lines = [f"cycles {start}..{end} (D=dispatch I=issue R=reissue C=complete T=retire)"]
    shown_seq = None
    for row in rows:
        if trace is not None and row.seq < len(trace) and row.seq != shown_seq:
            label = f"#{row.seq} {trace[row.seq].instr.format()}"
        elif row.seq != shown_seq:
            label = f"#{row.seq}"
        else:
            label = ""
        shown_seq = row.seq
        cells = "".join(
            row.events.get(cycle, ".") for cycle in range(start, end + 1)
        )
        lines.append(f"{label:<30.30} {row.role:<6}@c{row.cluster} {cells}")
    return "\n".join(lines)
